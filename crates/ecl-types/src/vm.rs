//! Register bytecode VM for the EFSM data path.
//!
//! The tree-walking interpreter ([`crate::interp::Machine`]) pays
//! per-node dispatch, span-keyed identifier memo probes and a byte-level
//! [`Value`] clone for every signal read. ECL's premise (DAC 1999) is
//! that the data computation compiles down to the flat C a POLIS-style
//! backend would emit — so the simulator compiles it too: each data
//! hook (predicate, action, valued-emit expression) is lowered *once*
//! ([`crate::lower`]) to a flat program of [`Op`]s over an `i64`
//! register file, with direct slot-indexed variable access and direct
//! signal-index value reads. No name ever resolves at runtime.
//!
//! Semantic contract: a compiled program is **observationally
//! identical** to the walker, including
//!
//! * values, mutated variable slots and emitted signal values,
//! * error instants (division by zero, out-of-bounds indexing, fuel
//!   exhaustion) with the walker's exact message, and — for all but
//!   fuel exhaustion — its exact span (coalesced [`Op::Burn`]s report
//!   the first coalesced node's span, which may sit a few nodes
//!   before where the walker's step-by-step counter would hit zero
//!   within the same expression),
//! * **fuel accounting**: [`Op::Burn`] charges exactly the interpreter
//!   steps the walker would burn on the same control path, so the
//!   kernel's cycle charges (`ops × cyc_per_op`) stay bit-identical.
//!
//! Constructs outside the bytecode subset compile to
//! [`Op::FallbackStmt`] — the statement subtree is executed by the
//! tree-walker in place, with the resulting [`Flow`] mapped back onto
//! compiled jump targets — so coverage can grow incrementally while
//! semantics stay exact.

use crate::interp::{EvalError, Flow, Machine, SignalReader};
use crate::value::Value;
use ecl_syntax::ast::Stmt;
use ecl_syntax::fxmap::FxHashMap;
use ecl_syntax::source::Span;

/// How a register's `i64` maps onto a C integer type: the bit width,
/// signedness, and `bool`'s 0/1 normalization. A register is always
/// *normalized*: it holds exactly the value `Value::as_i64` would
/// produce for the same bytes (sign- or zero-extended to 64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ext {
    /// Width in bits (8, 16 or 32 on the MIPS-o32-style target).
    pub bits: u8,
    /// Zero-extends (and wraps) like a C unsigned type.
    pub unsigned: bool,
    /// `bool`: stored bytes are normalized to 0/1.
    pub is_bool: bool,
}

impl Ext {
    /// C `int` (the type of literals, comparisons and logic results).
    pub const INT: Ext = Ext {
        bits: 32,
        unsigned: false,
        is_bool: false,
    };

    /// Normalize an `i64` to this type's range — the exact composition
    /// of `Value::from_i64` (truncate to width) and `Value::as_i64`
    /// (sign/zero extend) the walker performs on every conversion.
    #[inline]
    pub fn norm(self, v: i64) -> i64 {
        if self.is_bool {
            return (v != 0) as i64;
        }
        let bits = u32::from(self.bits);
        if bits >= 64 {
            return v;
        }
        let shift = 64 - bits;
        if self.unsigned {
            ((v << shift) as u64 >> shift) as i64
        } else {
            (v << shift) >> shift
        }
    }

    /// Read the scalar at byte offset `off` of a little-endian buffer.
    #[inline]
    pub fn read(self, bytes: &[u8], off: usize) -> i64 {
        let n = usize::from(self.bits / 8);
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(&bytes[off..off + n]);
        self.norm(i64::from_le_bytes(buf))
    }

    /// Write a (normalized) scalar at byte offset `off`.
    #[inline]
    pub fn write(self, bytes: &mut [u8], off: usize, v: i64) {
        let n = usize::from(self.bits / 8);
        let le = if self.is_bool {
            ((v != 0) as i64).to_le_bytes()
        } else {
            v.to_le_bytes()
        };
        bytes[off..off + n].copy_from_slice(&le[..n]);
    }
}

/// Binary operator kernel selector (operands are pre-normalized to the
/// common type, so one `i64` implementation serves signed and unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (errors on zero divisor).
    Div,
    /// Remainder (errors on zero divisor).
    Rem,
    /// Left shift by `rhs & 63`.
    Shl,
    /// Right shift by `rhs & 63` (logical for unsigned operands, which
    /// are zero-extended and non-negative).
    Shr,
    /// `<` (produces int 0/1).
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// Bitwise and.
    And,
    /// Bitwise xor.
    Xor,
    /// Bitwise or.
    Or,
}

/// Unary operator kernel selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// Wrapping negation.
    Neg,
    /// Bitwise not.
    BitNot,
    /// Logical not (produces int 0/1).
    LogNot,
}

/// One bytecode instruction. Registers are indices into the per-run
/// `i64` register file; `slot` indexes the machine's root scope (the
/// design's flat variable frame — PR 3's dense slots double as the
/// variable side of the register file); `sig` indexes the runtime's
/// signal-value table directly (no name lookup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Charge `n` walker-equivalent interpreter steps against the fuel.
    Burn {
        /// Steps to charge.
        n: u32,
        /// Span reported on fuel exhaustion.
        span: Span,
    },
    /// `dst = v` (already normalized at compile time).
    Const {
        /// Destination register.
        dst: u16,
        /// The constant.
        v: i64,
    },
    /// `dst = norm(src)` — type conversion (or a plain copy when the
    /// extension is the source's own type).
    Conv {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
        /// Target type extension.
        ext: Ext,
    },
    /// `dst += k` (static projection offset after a dynamic index).
    AddConst {
        /// Offset register.
        dst: u16,
        /// Byte delta.
        k: i64,
    },
    /// Bounds-checked dynamic index: `off += idx * elem` after
    /// verifying `0 <= idx < len` (the walker's exact check and error).
    AddScaled {
        /// Offset register (accumulates bytes).
        off: u16,
        /// Index register.
        idx: u16,
        /// Element size in bytes.
        elem: u32,
        /// Array length.
        len: u32,
        /// Span of the index expression node.
        span: Span,
    },
    /// `dst = read(root_slot)` — whole-scalar variable read.
    LoadVar {
        /// Destination register.
        dst: u16,
        /// Root-scope slot.
        slot: u32,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `root_slot = src` — whole-scalar variable write.
    StoreVar {
        /// Root-scope slot.
        slot: u32,
        /// Source register.
        src: u16,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `dst = read(root_slot at static byte offset)`.
    LoadVarOff {
        /// Destination register.
        dst: u16,
        /// Root-scope slot.
        slot: u32,
        /// Static byte offset.
        off: u32,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `root_slot at static byte offset = src`.
    StoreVarOff {
        /// Root-scope slot.
        slot: u32,
        /// Static byte offset.
        off: u32,
        /// Source register.
        src: u16,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `dst = read(root_slot at dynamic byte offset)`.
    LoadVarAt {
        /// Destination register.
        dst: u16,
        /// Root-scope slot.
        slot: u32,
        /// Register holding the byte offset.
        off: u16,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `root_slot at dynamic byte offset = src`.
    StoreVarAt {
        /// Root-scope slot.
        slot: u32,
        /// Register holding the byte offset.
        off: u16,
        /// Source register.
        src: u16,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `dst = current value of valued signal` (integer-typed).
    LoadSig {
        /// Destination register.
        dst: u16,
        /// Signal index.
        sig: u32,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `dst = read(signal value at static byte offset)`.
    LoadSigOff {
        /// Destination register.
        dst: u16,
        /// Signal index.
        sig: u32,
        /// Static byte offset.
        off: u32,
        /// Scalar type extension.
        ext: Ext,
    },
    /// `dst = read(signal value at dynamic byte offset)`.
    LoadSigAt {
        /// Destination register.
        dst: u16,
        /// Signal index.
        sig: u32,
        /// Register holding the byte offset.
        off: u16,
        /// Scalar type extension.
        ext: Ext,
    },
    /// Store an integer emit value into the signal's current-value
    /// buffer (in place — the byte buffer is reused, no allocation).
    StoreSig {
        /// Signal index.
        sig: u32,
        /// Source register.
        src: u16,
        /// The signal's scalar type extension.
        ext: Ext,
    },
    /// Aggregate emit fast path: copy a whole same-typed root variable
    /// into the signal's value buffer (`emit_v (outpkt, buffer)`).
    EmitCopy {
        /// Signal index.
        sig: u32,
        /// Root-scope slot of the source variable.
        slot: u32,
    },
    /// `dst = a ⊕ b`, result normalized to `ext`.
    Bin {
        /// Operator kernel.
        op: BinKind,
        /// Destination register.
        dst: u16,
        /// Left operand register (pre-normalized to the common type).
        a: u16,
        /// Right operand register (pre-normalized to the common type).
        b: u16,
        /// Result type extension.
        ext: Ext,
        /// Span reported on division/remainder by zero.
        span: Span,
    },
    /// `dst = ⊕ src`, result normalized to `ext`.
    Un {
        /// Operator kernel.
        op: UnKind,
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
        /// Result type extension.
        ext: Ext,
    },
    /// Unconditional jump to an op index.
    Jmp {
        /// Target op index.
        target: u32,
    },
    /// Jump when the register's truthiness equals `when_true`.
    JmpIf {
        /// Condition register.
        cond: u16,
        /// Target op index.
        target: u32,
        /// Jump on true (`true`) or on false (`false`).
        when_true: bool,
    },
    /// Execute a statement subtree through the tree-walker, then map
    /// its control-flow result onto compiled jump targets. The walker
    /// does its own fuel burning, error reporting and (scoped)
    /// declarations, so semantics are exact by construction.
    FallbackStmt {
        /// Index into [`Program::stmts`].
        stmt: u32,
        /// Jump target for `Flow::Break`.
        brk: u32,
        /// Jump target for `Flow::Continue`.
        cont: u32,
        /// Jump target for `Flow::Return` (the end of the enclosing
        /// top-level statement — `run_action` ignores flows between
        /// top-level statements).
        ret: u32,
    },
}

impl Op {
    /// Index of this opcode in the telemetry per-opcode counter table
    /// (`ecl_telemetry::metrics::VM_OPS`), in declaration order. A unit
    /// test checks the mnemonics against
    /// `ecl_telemetry::metrics::VM_OP_NAMES` so the two stay in sync.
    #[inline]
    pub fn telemetry_index(&self) -> usize {
        match self {
            Op::Burn { .. } => 0,
            Op::Const { .. } => 1,
            Op::Conv { .. } => 2,
            Op::AddConst { .. } => 3,
            Op::AddScaled { .. } => 4,
            Op::LoadVar { .. } => 5,
            Op::StoreVar { .. } => 6,
            Op::LoadVarOff { .. } => 7,
            Op::StoreVarOff { .. } => 8,
            Op::LoadVarAt { .. } => 9,
            Op::StoreVarAt { .. } => 10,
            Op::LoadSig { .. } => 11,
            Op::LoadSigOff { .. } => 12,
            Op::LoadSigAt { .. } => 13,
            Op::StoreSig { .. } => 14,
            Op::EmitCopy { .. } => 15,
            Op::Bin { .. } => 16,
            Op::Un { .. } => 17,
            Op::Jmp { .. } => 18,
            Op::JmpIf { .. } => 19,
            Op::FallbackStmt { .. } => 20,
        }
    }

    /// The opcode's telemetry mnemonic (matches
    /// `ecl_telemetry::metrics::VM_OP_NAMES`).
    pub fn mnemonic(&self) -> &'static str {
        ecl_telemetry::metrics::VM_OP_NAMES[self.telemetry_index()]
    }
}

/// A compiled data hook: flat ops, the register-file size, the result
/// register (predicates/emits), and the cloned statement subtrees
/// referenced by [`Op::FallbackStmt`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions.
    pub ops: Vec<Op>,
    /// Number of registers the program uses.
    pub regs: u16,
    /// Register holding the result value after the run.
    pub result: u16,
    /// Fallback statement subtrees (walker-executed).
    pub stmts: Vec<Stmt>,
}

/// Compilation outcome for one hook: a bytecode program, or a marker
/// that the hook runs entirely through the tree-walker.
#[derive(Debug, Clone)]
pub enum Compiled {
    /// Runs on the VM.
    Vm(Program),
    /// Outside the subset — the runtime walks the original AST.
    Walker,
}

impl Compiled {
    /// Is this hook VM-compiled?
    pub fn is_vm(&self) -> bool {
        matches!(self, Compiled::Vm(_))
    }
}

/// [`SignalReader`] over the runtime's signal-value table — the one
/// borrow-splitting helper shared by the VM's fallback ops and the
/// runtime's pure-walker paths (predicates, actions and emissions all
/// read signal values through this view).
pub struct ValuesReader<'a> {
    /// Signal index → current value (`None` for pure signals).
    pub values: &'a [Option<Value>],
    /// Signal name → index.
    pub by_name: &'a FxHashMap<String, usize>,
}

impl SignalReader for ValuesReader<'_> {
    fn read_signal(&self, name: &str) -> Option<Value> {
        self.by_name
            .get(name)
            .and_then(|i| self.values.get(*i))
            .and_then(|v| v.clone())
    }
}

/// Execute a compiled program.
///
/// `m` supplies fuel, the root variable slots and the tree-walker for
/// fallback ops; `values` is the signal-value table (read by loads,
/// written in place by [`Op::StoreSig`]/[`Op::EmitCopy`]); `regs` is
/// caller-owned scratch reused across runs (no steady-state
/// allocation). Returns the result register's value.
///
/// # Errors
///
/// The same [`EvalError`]s the tree-walker would raise on the same
/// inputs: division/remainder by zero, out-of-bounds indexing, fuel
/// exhaustion, and anything a fallback statement reports.
pub fn run(
    prog: &Program,
    m: &mut Machine,
    values: &mut [Option<Value>],
    by_name: &FxHashMap<String, usize>,
    regs: &mut Vec<i64>,
) -> Result<i64, EvalError> {
    regs.clear();
    regs.resize(prog.regs as usize, 0);
    // Hoist the telemetry gate once per program run; per-op counting is
    // then a predictable branch on a register-held bool.
    let tel = ecl_telemetry::enabled();
    if tel {
        ecl_telemetry::metrics::VM_HOOK_RUNS.raw_add(1);
    }
    let mut pc = 0usize;
    while pc < prog.ops.len() {
        if tel {
            ecl_telemetry::metrics::VM_OPS[prog.ops[pc].telemetry_index()].raw_add(1);
            if matches!(prog.ops[pc], Op::FallbackStmt { .. }) {
                ecl_telemetry::metrics::VM_FALLBACK_STMTS.raw_add(1);
            }
        }
        match prog.ops[pc] {
            Op::Burn { n, span } => m.burn_n(u64::from(n), span)?,
            Op::Const { dst, v } => regs[dst as usize] = v,
            Op::Conv { dst, src, ext } => regs[dst as usize] = ext.norm(regs[src as usize]),
            Op::AddConst { dst, k } => regs[dst as usize] += k,
            Op::AddScaled {
                off,
                idx,
                elem,
                len,
                span,
            } => {
                let i = regs[idx as usize];
                if i < 0 || i >= i64::from(len) {
                    return Err(EvalError {
                        msg: format!("index {i} out of bounds (len {len})"),
                        span,
                    });
                }
                regs[off as usize] += i * i64::from(elem);
            }
            Op::LoadVar { dst, slot, ext } => {
                regs[dst as usize] = ext.read(&m.root_value(slot as usize).bytes, 0);
            }
            Op::StoreVar { slot, src, ext } => {
                let v = regs[src as usize];
                ext.write(&mut m.root_value_mut(slot as usize).bytes, 0, v);
            }
            Op::LoadVarOff {
                dst,
                slot,
                off,
                ext,
            } => {
                regs[dst as usize] = ext.read(&m.root_value(slot as usize).bytes, off as usize);
            }
            Op::StoreVarOff {
                slot,
                off,
                src,
                ext,
            } => {
                let v = regs[src as usize];
                ext.write(&mut m.root_value_mut(slot as usize).bytes, off as usize, v);
            }
            Op::LoadVarAt {
                dst,
                slot,
                off,
                ext,
            } => {
                let o = regs[off as usize] as usize;
                regs[dst as usize] = ext.read(&m.root_value(slot as usize).bytes, o);
            }
            Op::StoreVarAt {
                slot,
                off,
                src,
                ext,
            } => {
                let o = regs[off as usize] as usize;
                let v = regs[src as usize];
                ext.write(&mut m.root_value_mut(slot as usize).bytes, o, v);
            }
            Op::LoadSig { dst, sig, ext } => {
                let val = values[sig as usize].as_ref().expect("valued signal");
                regs[dst as usize] = ext.read(&val.bytes, 0);
            }
            Op::LoadSigOff { dst, sig, off, ext } => {
                let val = values[sig as usize].as_ref().expect("valued signal");
                regs[dst as usize] = ext.read(&val.bytes, off as usize);
            }
            Op::LoadSigAt { dst, sig, off, ext } => {
                let o = regs[off as usize] as usize;
                let val = values[sig as usize].as_ref().expect("valued signal");
                regs[dst as usize] = ext.read(&val.bytes, o);
            }
            Op::StoreSig { sig, src, ext } => {
                let v = regs[src as usize];
                let val = values[sig as usize].as_mut().expect("valued signal");
                ext.write(&mut val.bytes, 0, v);
            }
            Op::EmitCopy { sig, slot } => {
                let src = m.root_value(slot as usize);
                let dst = values[sig as usize].as_mut().expect("valued signal");
                dst.bytes.copy_from_slice(&src.bytes);
            }
            Op::Bin {
                op,
                dst,
                a,
                b,
                ext,
                span,
            } => {
                let x = regs[a as usize];
                let y = regs[b as usize];
                let v = match op {
                    BinKind::Add => x.wrapping_add(y),
                    BinKind::Sub => x.wrapping_sub(y),
                    BinKind::Mul => x.wrapping_mul(y),
                    BinKind::Div => {
                        if y == 0 {
                            return Err(EvalError {
                                msg: "integer division by zero".into(),
                                span,
                            });
                        }
                        x.wrapping_div(y)
                    }
                    BinKind::Rem => {
                        if y == 0 {
                            return Err(EvalError {
                                msg: "integer remainder by zero".into(),
                                span,
                            });
                        }
                        x.wrapping_rem(y)
                    }
                    BinKind::Shl => x.wrapping_shl(y as u32 & 63),
                    BinKind::Shr => x.wrapping_shr(y as u32 & 63),
                    BinKind::Lt => (x < y) as i64,
                    BinKind::Gt => (x > y) as i64,
                    BinKind::Le => (x <= y) as i64,
                    BinKind::Ge => (x >= y) as i64,
                    BinKind::Eq => (x == y) as i64,
                    BinKind::Ne => (x != y) as i64,
                    BinKind::And => x & y,
                    BinKind::Xor => x ^ y,
                    BinKind::Or => x | y,
                };
                regs[dst as usize] = ext.norm(v);
            }
            Op::Un { op, dst, src, ext } => {
                let x = regs[src as usize];
                let v = match op {
                    UnKind::Neg => x.wrapping_neg(),
                    UnKind::BitNot => !x,
                    UnKind::LogNot => (x == 0) as i64,
                };
                regs[dst as usize] = ext.norm(v);
            }
            Op::Jmp { target } => {
                pc = target as usize;
                continue;
            }
            Op::JmpIf {
                cond,
                target,
                when_true,
            } => {
                if (regs[cond as usize] != 0) == when_true {
                    pc = target as usize;
                    continue;
                }
            }
            Op::FallbackStmt {
                stmt,
                brk,
                cont,
                ret,
            } => {
                let reader = ValuesReader {
                    values: &*values,
                    by_name,
                };
                match m.exec(&prog.stmts[stmt as usize], &reader)? {
                    Flow::Normal => {}
                    Flow::Break => {
                        pc = brk as usize;
                        continue;
                    }
                    Flow::Continue => {
                        pc = cont as usize;
                        continue;
                    }
                    Flow::Return(_) => {
                        pc = ret as usize;
                        continue;
                    }
                }
            }
        }
        pc += 1;
    }
    Ok(regs.get(prog.result as usize).copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_indices_cover_every_opcode_in_order() {
        use ecl_syntax::source::Span;
        let span = Span::default();
        let ext = Ext::INT;
        // One instance of every variant, in declaration order.
        let ops = [
            Op::Burn { n: 0, span },
            Op::Const { dst: 0, v: 0 },
            Op::Conv {
                dst: 0,
                src: 0,
                ext,
            },
            Op::AddConst { dst: 0, k: 0 },
            Op::AddScaled {
                off: 0,
                idx: 0,
                elem: 1,
                len: 1,
                span,
            },
            Op::LoadVar {
                dst: 0,
                slot: 0,
                ext,
            },
            Op::StoreVar {
                slot: 0,
                src: 0,
                ext,
            },
            Op::LoadVarOff {
                dst: 0,
                slot: 0,
                off: 0,
                ext,
            },
            Op::StoreVarOff {
                slot: 0,
                off: 0,
                src: 0,
                ext,
            },
            Op::LoadVarAt {
                dst: 0,
                slot: 0,
                off: 0,
                ext,
            },
            Op::StoreVarAt {
                slot: 0,
                off: 0,
                src: 0,
                ext,
            },
            Op::LoadSig {
                dst: 0,
                sig: 0,
                ext,
            },
            Op::LoadSigOff {
                dst: 0,
                sig: 0,
                off: 0,
                ext,
            },
            Op::LoadSigAt {
                dst: 0,
                sig: 0,
                off: 0,
                ext,
            },
            Op::StoreSig {
                sig: 0,
                src: 0,
                ext,
            },
            Op::EmitCopy { sig: 0, slot: 0 },
            Op::Bin {
                op: BinKind::Add,
                dst: 0,
                a: 0,
                b: 0,
                ext,
                span,
            },
            Op::Un {
                op: UnKind::Neg,
                dst: 0,
                src: 0,
                ext,
            },
            Op::Jmp { target: 0 },
            Op::JmpIf {
                cond: 0,
                target: 0,
                when_true: true,
            },
            Op::FallbackStmt {
                stmt: 0,
                brk: 0,
                cont: 0,
                ret: 0,
            },
        ];
        assert_eq!(ops.len(), ecl_telemetry::metrics::VM_OP_NAMES.len());
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.telemetry_index(), i, "{op:?}");
            assert_eq!(op.mnemonic(), ecl_telemetry::metrics::VM_OP_NAMES[i]);
        }
    }

    #[test]
    fn ext_normalization_matches_c_conversions() {
        let int = Ext::INT;
        assert_eq!(int.norm(0x1_0000_0000), 0);
        assert_eq!(int.norm(-1), -1);
        assert_eq!(int.norm(0xFFFF_FFFF), -1);
        let uint = Ext {
            bits: 32,
            unsigned: true,
            is_bool: false,
        };
        assert_eq!(uint.norm(-1), 0xFFFF_FFFF);
        let ch = Ext {
            bits: 8,
            unsigned: false,
            is_bool: false,
        };
        assert_eq!(ch.norm(130), -126);
        let b = Ext {
            bits: 8,
            unsigned: false,
            is_bool: true,
        };
        assert_eq!(b.norm(42), 1);
        assert_eq!(b.norm(0), 0);
    }

    #[test]
    fn ext_read_write_round_trip() {
        let uc = Ext {
            bits: 8,
            unsigned: true,
            is_bool: false,
        };
        let mut buf = [0u8; 4];
        uc.write(&mut buf, 2, 0x1AB);
        assert_eq!(buf, [0, 0, 0xAB, 0]);
        assert_eq!(uc.read(&buf, 2), 0xAB);
        let sh = Ext {
            bits: 16,
            unsigned: false,
            is_bool: false,
        };
        let mut buf = [0u8; 2];
        sh.write(&mut buf, 0, -2);
        assert_eq!(sh.read(&buf, 0), -2);
    }
}
