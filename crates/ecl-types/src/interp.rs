//! Interpreter for the C data sub-language.
//!
//! The ECL splitter extracts "data loops" and straight-line C fragments
//! from reactive modules (paper Section 4); at simulation time those
//! fragments run through this interpreter against the module's local
//! variable frame. Plain user C functions are also executed here.
//!
//! Design points:
//!
//! * values are byte-level ([`crate::value::Value`]), so unions and
//!   aggregate copies behave like C;
//! * signal *values* are read through the [`SignalReader`] trait — the
//!   paper overloads signal names to mean "value" in C expression
//!   contexts, and the runtime provides the per-instant values;
//! * the machine is fuelled: runaway loops abort with an error instead
//!   of hanging the simulator (data loops are instantaneous in the
//!   synchronous semantics, so they must terminate).

use crate::types::{Type, TypeId, TypeTable};
use crate::value::Value;
use ecl_syntax::ast::{BinOp, Expr, ExprKind, Function, Stmt, StmtKind, UnOp, VarDecl};
use ecl_syntax::diag::DiagSink;
use ecl_syntax::fxmap::FxHashMap;
use ecl_syntax::source::Span;
use std::fmt;
use std::sync::Arc;

/// Error during data-code evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// What went wrong.
    pub msg: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eval error: {} (at {})", self.msg, self.span)
    }
}

impl std::error::Error for EvalError {}

fn err<T>(msg: impl Into<String>, span: Span) -> Result<T, EvalError> {
    Err(EvalError {
        msg: msg.into(),
        span,
    })
}

/// Control-flow result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Flow {
    /// Fell through normally.
    Normal,
    /// `break` propagating to the nearest loop/switch.
    Break,
    /// `continue` propagating to the nearest loop.
    Continue,
    /// `return [value]` propagating to the function boundary.
    Return(Option<Value>),
}

/// Read access to the current instant's signal values.
///
/// Returns `Some(value)` only for names that denote *valued signals*
/// visible in the executing module; everything else returns `None` and
/// falls through to enum constants.
pub trait SignalReader {
    /// The value of signal `name` in the current instant, if any.
    fn read_signal(&self, name: &str) -> Option<Value>;
}

/// A [`SignalReader`] with no signals (plain C execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSignals;

impl SignalReader for NoSignals {
    fn read_signal(&self, _name: &str) -> Option<Value> {
        None
    }
}

/// A resolved lvalue: a variable slot plus a byte window into it.
/// Slot-addressed (no name), so resolving and accessing a place never
/// touches a string after the initial scope lookup.
#[derive(Debug, Clone, Copy)]
struct Place {
    scope: usize,
    slot: usize,
    offset: u32,
    ty: TypeId,
}

/// One variable scope: name → slot index into a dense value store.
/// `names[i]` is the name bound to `slots[i]` (used to validate the
/// span-keyed identifier cache without hashing the name).
#[derive(Debug, Clone, Default)]
struct Scope {
    index: FxHashMap<String, usize>,
    slots: Vec<Value>,
    names: Vec<String>,
}

/// The data-code interpreter.
///
/// Owns its [`TypeTable`] (append-only interning keeps externally
/// created [`TypeId`]s valid) and a set of callable C functions.
#[derive(Debug, Clone)]
pub struct Machine {
    table: TypeTable,
    funcs: FxHashMap<String, Arc<Function>>,
    scopes: Vec<Scope>,
    /// Identifier memo: source span → (declaration epoch, scope, slot)
    /// of the last resolution. An entry is valid only when no *new*
    /// binding has been declared since it was recorded
    /// ([`Machine::decl_epoch`] unchanged — a later declaration could
    /// shadow the cached one) and the cached slot still carries the
    /// expected name; anything else falls back to the scope walk.
    ident_cache: FxHashMap<(u32, u32), (u64, u32, u32)>,
    /// Bumped whenever a new name is bound (not on overwrite): the
    /// validity fence of [`Machine::ident_cache`].
    decl_epoch: u64,
    fuel: u64,
}

/// Default execution fuel: generous for real designs, finite for tests.
pub const DEFAULT_FUEL: u64 = 50_000_000;

impl Machine {
    /// Create a machine over a type table.
    pub fn new(table: TypeTable) -> Self {
        Machine {
            table,
            funcs: FxHashMap::default(),
            scopes: vec![Scope::default()],
            ident_cache: FxHashMap::default(),
            decl_epoch: 0,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Access the type table.
    pub fn table(&self) -> &TypeTable {
        &self.table
    }

    /// Mutable access to the type table (for resolving new types).
    pub fn table_mut(&mut self) -> &mut TypeTable {
        &mut self.table
    }

    /// Limit the number of interpreter steps before aborting.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Register a callable C function.
    pub fn add_function(&mut self, f: &Function) {
        self.funcs.insert(f.name.name.clone(), Arc::new(f.clone()));
    }

    /// Open a new variable scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(Scope::default());
    }

    /// Close the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if only the root scope remains.
    pub fn pop_scope(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the root scope");
        self.scopes.pop();
    }

    /// Declare (or overwrite) a variable in the innermost scope.
    pub fn declare(&mut self, name: &str, v: Value) {
        let scope = self.scopes.last_mut().expect("at least the root scope");
        match scope.index.get(name) {
            Some(&slot) => scope.slots[slot] = v,
            None => {
                scope.index.insert(name.to_string(), scope.slots.len());
                scope.slots.push(v);
                scope.names.push(name.to_string());
                // A new binding may shadow cached resolutions.
                self.decl_epoch += 1;
            }
        }
    }

    /// Find the binding of `name` at source position `span`, through
    /// the span-keyed memo when possible.
    fn lookup_ident(&mut self, name: &str, span: Span) -> Option<(usize, usize)> {
        let key = (span.start, span.end);
        if let Some(&(epoch, si, sl)) = self.ident_cache.get(&key) {
            if epoch == self.decl_epoch {
                if let Some(s) = self.scopes.get(si as usize) {
                    if s.names.get(sl as usize).is_some_and(|n| n == name) {
                        return Some((si as usize, sl as usize));
                    }
                }
            }
        }
        for (i, s) in self.scopes.iter().enumerate().rev() {
            if let Some(&slot) = s.index.get(name) {
                self.ident_cache
                    .insert(key, (self.decl_epoch, i as u32, slot as u32));
                return Some((i, slot));
            }
        }
        None
    }

    /// Read a variable (innermost scope wins).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.index.get(name).map(|&i| &s.slots[i]))
    }

    /// Overwrite an existing variable wherever it lives.
    pub fn set(&mut self, name: &str, v: Value) -> bool {
        for s in self.scopes.iter_mut().rev() {
            if let Some(&slot) = s.index.get(name) {
                s.slots[slot] = v;
                return true;
            }
        }
        false
    }

    fn burn(&mut self, span: Span) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return err("interpreter fuel exhausted (runaway data loop?)", span);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Charge `n` interpreter steps at once — the bytecode VM's batched
    /// equivalent of `n` [`Machine::burn`] calls: succeeds iff the
    /// walker would have survived all `n`, and leaves the fuel at 0 on
    /// exhaustion (exactly where the walker's step-by-step decrement
    /// would have errored).
    ///
    /// # Errors
    ///
    /// The walker's fuel-exhaustion error when fewer than `n` steps
    /// remain.
    pub fn burn_n(&mut self, n: u64, span: Span) -> Result<(), EvalError> {
        if self.fuel < n {
            self.fuel = 0;
            return err("interpreter fuel exhausted (runaway data loop?)", span);
        }
        self.fuel -= n;
        Ok(())
    }

    // -- root-scope (flat frame) access for the bytecode VM ---------------

    /// Number of slots in the root scope (the design's flat variable
    /// frame). The VM compiler records this at lowering time: root
    /// bindings are append-only, so an unchanged length proves every
    /// compile-time slot resolution is still valid.
    pub fn root_len(&self) -> usize {
        self.scopes[0].slots.len()
    }

    /// Root-scope slot of `name`, if bound there.
    pub fn root_lookup(&self, name: &str) -> Option<usize> {
        self.scopes[0].index.get(name).copied()
    }

    /// Read a root-scope slot by index (the VM's variable load path).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn root_value(&self, slot: usize) -> &Value {
        &self.scopes[0].slots[slot]
    }

    /// Mutable root-scope slot by index (the VM's variable store path).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn root_value_mut(&mut self, slot: usize) -> &mut Value {
        &mut self.scopes[0].slots[slot]
    }

    /// Iterate the root scope's `(name, value)` bindings in slot order
    /// (differential tests compare whole frames through this).
    pub fn root_entries(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.scopes[0]
            .names
            .iter()
            .map(String::as_str)
            .zip(self.scopes[0].slots.iter())
    }

    // -- expressions -----------------------------------------------------

    /// Evaluate an expression to a value.
    ///
    /// # Errors
    ///
    /// Any type mismatch, unknown name, division by zero or fuel
    /// exhaustion yields an [`EvalError`].
    pub fn eval(&mut self, e: &Expr, sigs: &dyn SignalReader) -> Result<Value, EvalError> {
        self.burn(e.span)?;
        match &e.kind {
            ExprKind::IntLit(v) => {
                let int = self.table.int();
                Ok(Value::from_i64(&self.table, int, *v))
            }
            ExprKind::FloatLit(v) => {
                let d = self.table.intern(Type::Double);
                Ok(Value::from_f64(&self.table, d, *v))
            }
            ExprKind::CharLit(c) => {
                let ch = self.table.intern(Type::Char);
                Ok(Value::from_i64(&self.table, ch, *c as i64))
            }
            ExprKind::StrLit(_) => err("string literals are not supported in data code", e.span),
            ExprKind::Ident(id) => {
                if let Some((si, sl)) = self.lookup_ident(&id.name, id.span) {
                    return Ok(self.scopes[si].slots[sl].clone());
                }
                if let Some(v) = sigs.read_signal(&id.name) {
                    return Ok(v);
                }
                if let Some(c) = self.table.enum_consts.get(&id.name).copied() {
                    let int = self.table.int();
                    return Ok(Value::from_i64(&self.table, int, c));
                }
                err(format!("unknown name `{}`", id.name), id.span)
            }
            ExprKind::Unary(op, inner) => self.eval_unary(*op, inner, e.span, sigs),
            ExprKind::Binary(op, a, b) => self.eval_binary(*op, a, b, e.span, sigs),
            ExprKind::Assign(op, lhs, rhs) => {
                let rv = self.eval(rhs, sigs)?;
                let place = self.resolve_place(lhs, sigs)?;
                let new = match op.binop() {
                    None => self.convert_or_err(rv, place.ty, rhs.span)?,
                    Some(bop) => {
                        let old = self.read_place(&place);
                        let combined = self.apply_binop(bop, &old, &rv, e.span)?;
                        self.convert_or_err(combined, place.ty, e.span)?
                    }
                };
                self.write_place(&place, &new);
                Ok(new)
            }
            ExprKind::PreIncDec(inc, inner) => {
                let place = self.resolve_place(inner, sigs)?;
                let old = self.read_place(&place);
                let int = self.table.int();
                let one = Value::from_i64(&self.table, int, 1);
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                let newv = self.apply_binop(op, &old, &one, e.span)?;
                let newv = self.convert_or_err(newv, place.ty, e.span)?;
                self.write_place(&place, &newv);
                Ok(newv)
            }
            ExprKind::PostIncDec(inc, inner) => {
                let place = self.resolve_place(inner, sigs)?;
                let old = self.read_place(&place);
                let int = self.table.int();
                let one = Value::from_i64(&self.table, int, 1);
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                let newv = self.apply_binop(op, &old, &one, e.span)?;
                let newv = self.convert_or_err(newv, place.ty, e.span)?;
                self.write_place(&place, &newv);
                Ok(old)
            }
            ExprKind::Ternary(c, t, f) => {
                if self.eval(c, sigs)?.is_truthy() {
                    self.eval(t, sigs)
                } else {
                    self.eval(f, sigs)
                }
            }
            ExprKind::Call(name, args) => self.eval_call(&name.name, args, e.span, sigs),
            ExprKind::Index(_, _) | ExprKind::Member(_, _) | ExprKind::Arrow(_, _) => {
                // Projections rooted in a variable are lvalue reads;
                // projections rooted in a signal value (the paper reads
                // `inpkt.cooked.header[j]` where `inpkt` is a signal)
                // or another rvalue are evaluated by value.
                if self.rooted_in_variable(e) {
                    let place = self.resolve_place(e, sigs)?;
                    Ok(self.read_place(&place))
                } else {
                    self.eval_projection(e, sigs)
                }
            }
            ExprKind::Cast(ty_ref, inner) => {
                let v = self.eval(inner, sigs)?;
                let mut sink = DiagSink::new();
                let Some(to) = self.table.resolve(ty_ref, &mut sink) else {
                    return err("cannot resolve cast target type", e.span);
                };
                self.convert_or_err(v, to, e.span)
            }
            ExprKind::SizeofType(ty_ref) => {
                let mut sink = DiagSink::new();
                let Some(ty) = self.table.resolve(ty_ref, &mut sink) else {
                    return err("cannot resolve sizeof type", e.span);
                };
                let int = self.table.int();
                let size = self.table.size_of(ty);
                Ok(Value::from_i64(&self.table, int, size as i64))
            }
            ExprKind::SizeofExpr(inner) => {
                let v = self.eval(inner, sigs)?;
                let int = self.table.int();
                Ok(Value::from_i64(&self.table, int, v.bytes.len() as i64))
            }
            ExprKind::Comma(a, b) => {
                self.eval(a, sigs)?;
                self.eval(b, sigs)
            }
        }
    }

    fn convert_or_err(&self, v: Value, to: TypeId, span: Span) -> Result<Value, EvalError> {
        let from = v.ty;
        match v.convert(&self.table, to) {
            Some(v) => Ok(v),
            None => err(
                format!(
                    "cannot convert `{}` to `{}`",
                    self.table.name_of(from),
                    self.table.name_of(to)
                ),
                span,
            ),
        }
    }

    fn eval_unary(
        &mut self,
        op: UnOp,
        inner: &Expr,
        span: Span,
        sigs: &dyn SignalReader,
    ) -> Result<Value, EvalError> {
        let v = self.eval(inner, sigs)?;
        let t = self.table.get(v.ty);
        match op {
            UnOp::Plus => Ok(v),
            UnOp::Neg => {
                if t.is_float() {
                    let x = v.as_f64(&self.table);
                    Ok(Value::from_f64(&self.table, v.ty, -x))
                } else if t.is_integer() {
                    let ty = self.promote(v.ty);
                    let x = v.as_i64(&self.table);
                    Ok(Value::from_i64(&self.table, ty, x.wrapping_neg()))
                } else {
                    err("negation needs a numeric operand", span)
                }
            }
            UnOp::Not => {
                let int = self.table.int();
                Ok(Value::from_i64(&self.table, int, (!v.is_truthy()) as i64))
            }
            UnOp::BitNot => {
                if !t.is_integer() {
                    return err("`~` needs an integer operand", span);
                }
                let ty = self.promote(v.ty);
                let x = v.as_i64(&self.table);
                Ok(Value::from_i64(&self.table, ty, !x))
            }
            UnOp::Deref | UnOp::AddrOf => err(
                "pointer operations are not supported in interpreted data code \
                 (see DESIGN.md: the paper's designs do not use them)",
                span,
            ),
        }
    }

    /// Integer promotion: ranks below `int` widen to `int`.
    fn promote(&mut self, ty: TypeId) -> TypeId {
        match self.table.get(ty) {
            Type::Bool | Type::Char | Type::UChar | Type::Short | Type::UShort | Type::Enum(_) => {
                self.table.int()
            }
            _ => ty,
        }
    }

    /// Usual arithmetic conversions (simplified to the 32-bit target).
    fn usual_arith(&mut self, a: TypeId, b: TypeId) -> TypeId {
        let ta = self.table.get(a);
        let tb = self.table.get(b);
        if ta == Type::Double || tb == Type::Double {
            return self.table.intern(Type::Double);
        }
        if ta == Type::Float || tb == Type::Float {
            return self.table.intern(Type::Float);
        }
        let pa = self.promote(a);
        let pb = self.promote(b);
        let ta = self.table.get(pa);
        let tb = self.table.get(pb);
        // Same-size: unsigned wins; otherwise the larger size wins.
        let sa = self.table.size_of(pa);
        let sb = self.table.size_of(pb);
        if sa == sb {
            if ta.is_unsigned() || tb.is_unsigned() {
                self.table.intern(Type::UInt)
            } else {
                pa
            }
        } else if sa > sb {
            pa
        } else {
            pb
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        span: Span,
        sigs: &dyn SignalReader,
    ) -> Result<Value, EvalError> {
        // Short-circuit operators first.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let int = self.table.int();
            let va = self.eval(a, sigs)?;
            let result = match op {
                BinOp::LogAnd => va.is_truthy() && self.eval(b, sigs)?.is_truthy(),
                BinOp::LogOr => va.is_truthy() || self.eval(b, sigs)?.is_truthy(),
                _ => unreachable!(),
            };
            return Ok(Value::from_i64(&self.table, int, result as i64));
        }
        let va = self.eval(a, sigs)?;
        let vb = self.eval(b, sigs)?;
        self.apply_binop(op, &va, &vb, span)
    }

    /// Apply a (non-short-circuit) binary operator to two values.
    fn apply_binop(
        &mut self,
        op: BinOp,
        va: &Value,
        vb: &Value,
        span: Span,
    ) -> Result<Value, EvalError> {
        // Fast path: both operands already share a 32-bit integer type
        // (the overwhelmingly common case in extracted data code) — no
        // promotion, no conversions, no table walks.
        if va.ty == vb.ty {
            let t = self.table.get(va.ty);
            if matches!(t, Type::Int | Type::UInt) {
                if let Some(v) = self.int_binop(op, va, vb, t == Type::UInt, span)? {
                    return Ok(v);
                }
            }
        }
        let ta = self.table.get(va.ty);
        let tb = self.table.get(vb.ty);
        if !ta.is_scalar() && !matches!(ta, Type::Array(_, _)) {
            return err("left operand is not scalar", span);
        }
        if !tb.is_scalar() && !matches!(tb, Type::Array(_, _)) {
            return err("right operand is not scalar", span);
        }
        // Array operands bit-cast to integers (reproduction extension,
        // used by Figure 2's crc comparison).
        let int = self.table.int();
        let va = if matches!(ta, Type::Array(_, _)) {
            self.convert_or_err(va.clone(), int, span)?
        } else {
            va.clone()
        };
        let vb = if matches!(tb, Type::Array(_, _)) {
            self.convert_or_err(vb.clone(), int, span)?
        } else {
            vb.clone()
        };
        let common = self.usual_arith(va.ty, vb.ty);
        let tc = self.table.get(common);
        if tc.is_float() {
            let x = va
                .convert(&self.table, common)
                .expect("float conv")
                .as_f64(&self.table);
            let y = vb
                .convert(&self.table, common)
                .expect("float conv")
                .as_f64(&self.table);
            let fv = |m: &Self, v: f64| Value::from_f64(&m.table, common, v);
            let bv = |m: &mut Self, v: bool| {
                let int = m.table.int();
                Value::from_i64(&m.table, int, v as i64)
            };
            return Ok(match op {
                BinOp::Add => fv(self, x + y),
                BinOp::Sub => fv(self, x - y),
                BinOp::Mul => fv(self, x * y),
                BinOp::Div => {
                    if y == 0.0 {
                        return err("float division by zero", span);
                    }
                    fv(self, x / y)
                }
                BinOp::Lt => bv(self, x < y),
                BinOp::Gt => bv(self, x > y),
                BinOp::Le => bv(self, x <= y),
                BinOp::Ge => bv(self, x >= y),
                BinOp::Eq => bv(self, x == y),
                BinOp::Ne => bv(self, x != y),
                _ => return err("operator not defined for floats", span),
            });
        }
        // Integer path. Shifts keep the promoted LHS type.
        let unsigned = tc.is_unsigned();
        let x = va
            .convert(&self.table, common)
            .expect("int conv")
            .as_i64(&self.table);
        let y = vb
            .convert(&self.table, common)
            .expect("int conv")
            .as_i64(&self.table);
        Ok(self
            .apply_int_op(op, common, unsigned, x, y, span)?
            .expect("short-circuit handled earlier"))
    }

    /// The integer fast path of [`Machine::apply_binop`]: both
    /// operands already share the same `int`/`unsigned int` type, so
    /// promotion and conversion are skipped and the shared operator
    /// kernel runs directly. Returns `Ok(None)` for operators the
    /// integer kernel does not cover (caller falls back).
    fn int_binop(
        &mut self,
        op: BinOp,
        va: &Value,
        vb: &Value,
        unsigned: bool,
        span: Span,
    ) -> Result<Option<Value>, EvalError> {
        let x = va.as_i64(&self.table);
        let y = vb.as_i64(&self.table);
        self.apply_int_op(op, va.ty, unsigned, x, y, span)
    }

    /// The one integer operator kernel shared by the generic and the
    /// same-type fast path of [`Machine::apply_binop`]: `x op y` with
    /// the result in type `common` (comparisons produce `int`).
    /// Returns `Ok(None)` only for the short-circuit operators, which
    /// both callers handle before reaching here.
    fn apply_int_op(
        &mut self,
        op: BinOp,
        common: TypeId,
        unsigned: bool,
        x: i64,
        y: i64,
        span: Span,
    ) -> Result<Option<Value>, EvalError> {
        let iv = |m: &Self, v: i64| Some(Value::from_i64(&m.table, common, v));
        let bv = |m: &mut Self, v: bool| {
            let int = m.table.int();
            Some(Value::from_i64(&m.table, int, v as i64))
        };
        Ok(match op {
            BinOp::Add => iv(self, x.wrapping_add(y)),
            BinOp::Sub => iv(self, x.wrapping_sub(y)),
            BinOp::Mul => iv(self, x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return err("integer division by zero", span);
                }
                if unsigned {
                    iv(self, ((x as u64) / (y as u64)) as i64)
                } else {
                    iv(self, x.wrapping_div(y))
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    return err("integer remainder by zero", span);
                }
                if unsigned {
                    iv(self, ((x as u64) % (y as u64)) as i64)
                } else {
                    iv(self, x.wrapping_rem(y))
                }
            }
            BinOp::Shl => iv(self, x.wrapping_shl(y as u32 & 63)),
            BinOp::Shr => {
                if unsigned {
                    // Logical shift on the 32-bit value.
                    let xw = (x as u64) & 0xFFFF_FFFF;
                    iv(self, (xw >> (y as u32 & 63)) as i64)
                } else {
                    iv(self, x.wrapping_shr(y as u32 & 63))
                }
            }
            BinOp::Lt => bv(
                self,
                if unsigned {
                    (x as u64) < y as u64
                } else {
                    x < y
                },
            ),
            BinOp::Gt => bv(
                self,
                if unsigned {
                    (x as u64) > y as u64
                } else {
                    x > y
                },
            ),
            BinOp::Le => bv(
                self,
                if unsigned {
                    x as u64 <= y as u64
                } else {
                    x <= y
                },
            ),
            BinOp::Ge => bv(
                self,
                if unsigned {
                    x as u64 >= y as u64
                } else {
                    x >= y
                },
            ),
            BinOp::Eq => bv(self, x == y),
            BinOp::Ne => bv(self, x != y),
            BinOp::BitAnd => iv(self, x & y),
            BinOp::BitXor => iv(self, x ^ y),
            BinOp::BitOr => iv(self, x | y),
            BinOp::LogAnd | BinOp::LogOr => None,
        })
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        sigs: &dyn SignalReader,
    ) -> Result<Value, EvalError> {
        let Some(f) = self.funcs.get(name).map(Arc::clone) else {
            return err(format!("unknown function `{name}`"), span);
        };
        let Some(body) = f.body.as_ref() else {
            return err(format!("function `{name}` has no body"), span);
        };
        if args.len() != f.params.len() {
            return err(
                format!(
                    "`{name}` expects {} arguments, got {}",
                    f.params.len(),
                    args.len()
                ),
                span,
            );
        }
        // Evaluate arguments in the caller scope.
        let mut vals = Vec::new();
        for (p, a) in f.params.iter().zip(args) {
            let v = self.eval(a, sigs)?;
            let mut sink = DiagSink::new();
            let Some(pt) = self.table.resolve(&p.ty, &mut sink) else {
                return err(format!("cannot resolve parameter type of `{name}`"), span);
            };
            vals.push((p.name.name.clone(), self.convert_or_err(v, pt, a.span)?));
        }
        // Fresh function scope (C functions do not see caller locals).
        let saved = std::mem::replace(&mut self.scopes, vec![Scope::default()]);
        for (n, v) in vals {
            self.declare(&n, v);
        }
        let result = (|| -> Result<Value, EvalError> {
            for s in &body.stmts {
                match self.exec(s, sigs)? {
                    Flow::Return(Some(v)) => return Ok(v),
                    Flow::Return(None) => break,
                    Flow::Normal => {}
                    Flow::Break | Flow::Continue => {
                        return err("break/continue outside loop", span)
                    }
                }
            }
            let void = self.table.intern(Type::Void);
            Ok(Value::zero(&self.table, void))
        })();
        self.scopes = saved;
        result
    }

    /// Is the root of a projection chain a variable currently in scope?
    fn rooted_in_variable(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(id) => self.get(&id.name).is_some(),
            ExprKind::Index(base, _) | ExprKind::Member(base, _) | ExprKind::Arrow(base, _) => {
                self.rooted_in_variable(base)
            }
            _ => false,
        }
    }

    /// Evaluate a field/element projection on an rvalue.
    fn eval_projection(&mut self, e: &Expr, sigs: &dyn SignalReader) -> Result<Value, EvalError> {
        match &e.kind {
            ExprKind::Member(base, field) => {
                let v = self.eval(base, sigs)?;
                let rec = match self.table.get(v.ty) {
                    Type::Struct(r) | Type::Union(r) => self.table.record(r),
                    _ => return err("member access on a non-record value", e.span),
                };
                let Some(f) = rec.field(&field.name) else {
                    return err(format!("no field `{}`", field.name), field.span);
                };
                let (offset, ty) = (f.offset, f.ty);
                Ok(v.read_at(&self.table, offset, ty))
            }
            ExprKind::Index(base, idx) => {
                let v = self.eval(base, sigs)?;
                let Type::Array(elem, n) = self.table.get(v.ty) else {
                    return err("indexing a non-array value", e.span);
                };
                let i = self.eval(idx, sigs)?.as_i64(&self.table);
                if i < 0 || i as u32 >= n {
                    return err(format!("index {i} out of bounds (len {n})"), e.span);
                }
                let off = self.table.size_of(elem) * i as u32;
                Ok(v.read_at(&self.table, off, elem))
            }
            ExprKind::Arrow(_, _) => err(
                "`->` needs pointers, which interpreted data code does not support",
                e.span,
            ),
            _ => err("not a projection", e.span),
        }
    }

    // -- places (lvalues) --------------------------------------------------

    fn resolve_place(&mut self, e: &Expr, sigs: &dyn SignalReader) -> Result<Place, EvalError> {
        match &e.kind {
            ExprKind::Ident(id) => {
                if let Some((scope, slot)) = self.lookup_ident(&id.name, id.span) {
                    return Ok(Place {
                        scope,
                        slot,
                        offset: 0,
                        ty: self.scopes[scope].slots[slot].ty,
                    });
                }
                err(format!("cannot assign to `{}`", id.name), id.span)
            }
            ExprKind::Index(base, idx) => {
                let b = self.resolve_place(base, sigs)?;
                let Type::Array(elem, n) = self.table.get(b.ty) else {
                    return err("indexing a non-array", e.span);
                };
                let i = self.eval(idx, sigs)?.as_i64(&self.table);
                if i < 0 || i as u32 >= n {
                    return err(format!("index {i} out of bounds (len {n})"), e.span);
                }
                Ok(Place {
                    offset: b.offset + self.table.size_of(elem) * i as u32,
                    ty: elem,
                    ..b
                })
            }
            ExprKind::Member(base, field) => {
                let b = self.resolve_place(base, sigs)?;
                let rec = match self.table.get(b.ty) {
                    Type::Struct(r) | Type::Union(r) => self.table.record(r),
                    _ => return err("member access on a non-record", e.span),
                };
                let Some(f) = rec.field(&field.name) else {
                    return err(format!("no field `{}`", field.name), field.span);
                };
                let (offset, ty) = (f.offset, f.ty);
                Ok(Place {
                    offset: b.offset + offset,
                    ty,
                    ..b
                })
            }
            ExprKind::Arrow(_, _) => err(
                "`->` needs pointers, which interpreted data code does not support",
                e.span,
            ),
            _ => err("not an lvalue", e.span),
        }
    }

    fn read_place(&self, p: &Place) -> Value {
        self.scopes[p.scope].slots[p.slot].read_at(&self.table, p.offset, p.ty)
    }

    fn write_place(&mut self, p: &Place, v: &Value) {
        self.scopes[p.scope].slots[p.slot].write_at(p.offset, v);
    }

    // -- statements -------------------------------------------------------

    /// Execute one statement.
    ///
    /// # Errors
    ///
    /// Reactive (ECL) statements are rejected: the splitter must never
    /// leave them inside extracted data code.
    pub fn exec(&mut self, s: &Stmt, sigs: &dyn SignalReader) -> Result<Flow, EvalError> {
        self.burn(s.span)?;
        match &s.kind {
            StmtKind::Expr(None) => Ok(Flow::Normal),
            StmtKind::Expr(Some(e)) => {
                self.eval(e, sigs)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl(d) => {
                self.exec_decl(d, sigs)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => {
                self.push_scope();
                let r = self.exec_all(&b.stmts, sigs);
                self.pop_scope();
                r
            }
            StmtKind::If { cond, then, els } => {
                if self.eval(cond, sigs)?.is_truthy() {
                    self.exec(then, sigs)
                } else if let Some(e) = els {
                    self.exec(e, sigs)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.burn(s.span)?;
                    if !self.eval(cond, sigs)?.is_truthy() {
                        break;
                    }
                    match self.exec(body, sigs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.burn(s.span)?;
                    match self.exec(body, sigs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond, sigs)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                let r = (|| -> Result<Flow, EvalError> {
                    if let Some(i) = init {
                        self.exec(i, sigs)?;
                    }
                    loop {
                        self.burn(s.span)?;
                        if let Some(c) = cond {
                            if !self.eval(c, sigs)?.is_truthy() {
                                break;
                            }
                        }
                        match self.exec(body, sigs)? {
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Normal | Flow::Continue => {}
                        }
                        if let Some(st) = step {
                            self.eval(st, sigs)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.pop_scope();
                r
            }
            StmtKind::Switch { scrutinee, arms } => {
                let v = self.eval(scrutinee, sigs)?.as_i64(&self.table);
                // Find the matching arm (or default), then run with
                // fallthrough until `break`.
                let mut start = None;
                for (i, arm) in arms.iter().enumerate() {
                    if let Some(case) = &arm.value {
                        let cv = self.eval(case, sigs)?.as_i64(&self.table);
                        if cv == v {
                            start = Some(i);
                            break;
                        }
                    }
                }
                if start.is_none() {
                    start = arms.iter().position(|a| a.value.is_none());
                }
                if let Some(from) = start {
                    self.push_scope();
                    for arm in &arms[from..] {
                        for st in &arm.stmts {
                            match self.exec(st, sigs) {
                                Ok(Flow::Break) => {
                                    self.pop_scope();
                                    return Ok(Flow::Normal);
                                }
                                Ok(Flow::Return(v)) => {
                                    self.pop_scope();
                                    return Ok(Flow::Return(v));
                                }
                                Ok(Flow::Continue) => {
                                    self.pop_scope();
                                    return Ok(Flow::Continue);
                                }
                                Ok(Flow::Normal) => {}
                                Err(e) => {
                                    self.pop_scope();
                                    return Err(e);
                                }
                            }
                        }
                    }
                    self.pop_scope();
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, sigs)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Await(_)
            | StmtKind::AwaitImmediate(_)
            | StmtKind::Emit(_)
            | StmtKind::EmitV(_, _)
            | StmtKind::Halt
            | StmtKind::Present { .. }
            | StmtKind::Abort { .. }
            | StmtKind::Suspend { .. }
            | StmtKind::Par(_)
            | StmtKind::Signal(_) => err(
                "reactive statement reached the data interpreter — splitter bug",
                s.span,
            ),
        }
    }

    /// Execute a statement list in the current scope.
    pub fn exec_all(&mut self, stmts: &[Stmt], sigs: &dyn SignalReader) -> Result<Flow, EvalError> {
        for st in stmts {
            match self.exec(st, sigs)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Declare the variables of a declaration statement.
    pub fn exec_decl(&mut self, d: &VarDecl, sigs: &dyn SignalReader) -> Result<(), EvalError> {
        for decl in &d.decls {
            let mut sink = DiagSink::new();
            let Some(ty) = self.table.resolve(&decl.ty, &mut sink) else {
                return err(
                    format!("cannot resolve type of `{}`", decl.name.name),
                    d.span,
                )?;
            };
            let v = match &decl.init {
                Some(e) => {
                    let raw = self.eval(e, sigs)?;
                    self.convert_or_err(raw, ty, e.span)?
                }
                None => Value::zero(&self.table, ty),
            };
            self.declare(&decl.name.name, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_syntax::parse_str;

    /// Run `body` as the contents of a C function `void t() { ... }` and
    /// return the machine for inspection.
    fn run(decls: &str, body: &str) -> Machine {
        let src = format!("{decls}\nvoid t() {{ {body} }}");
        let prog = parse_str(&src).expect("parse");
        let mut sink = DiagSink::new();
        let table = TypeTable::build(&prog, &mut sink);
        assert!(!sink.has_errors(), "{sink}");
        let mut m = Machine::new(table);
        for f in prog.functions() {
            m.add_function(f);
        }
        let f = prog.functions().find(|f| f.name.name == "t").unwrap();
        let body = f.body.clone().unwrap();
        for s in &body.stmts {
            m.exec(s, &NoSignals).expect("exec");
        }
        m
    }

    fn int_var(m: &Machine, name: &str) -> i64 {
        m.get(name).unwrap().as_i64(m.table())
    }

    #[test]
    fn arithmetic_and_assignment() {
        let m = run("", "int x; int y; x = 6; y = x * 7;");
        assert_eq!(int_var(&m, "y"), 42);
    }

    #[test]
    fn compound_assignment_and_incdec() {
        let m = run("", "int x = 10; x += 5; x <<= 1; x--; ++x; int y = x++;");
        assert_eq!(int_var(&m, "y"), 30);
        assert_eq!(int_var(&m, "x"), 31);
    }

    #[test]
    fn late_shadowing_declaration_wins_over_cached_binding() {
        // Iteration 0 resolves `x` at the shared use site to the outer
        // binding (and memoizes it); iteration 1 declares a shadowing
        // `x` in the loop scope before the same use site runs again.
        // The identifier memo must notice the new binding (declaration
        // epoch) and re-resolve: acc = 1 + 5, not 1 + 1.
        let m = run(
            "",
            "int x = 1; int acc = 0; int i; \
             for (i = 0; i < 2; i++) { if (i == 1) int x = 5; acc = acc + x; }",
        );
        assert_eq!(int_var(&m, "acc"), 6);
    }

    #[test]
    fn while_and_for_loops() {
        let m = run(
            "",
            "int sum = 0; int i; for (i = 1; i <= 10; i++) { sum += i; } \
             int n = 0; while (n < 4) { n = n + 1; }",
        );
        assert_eq!(int_var(&m, "sum"), 55);
        assert_eq!(int_var(&m, "n"), 4);
    }

    #[test]
    fn crc_loop_from_figure_2() {
        // The exact CRC accumulation of the paper's Figure 2.
        let m = run(
            "#define PKTSIZE 8\ntypedef unsigned char byte;\
             typedef struct { byte packet[PKTSIZE]; } raw_t;",
            "raw_t p; int i; unsigned int crc; \
             for (i = 0; i < PKTSIZE; i++) { p.packet[i] = i + 1; } \
             for (i = 0, crc = 0; i < PKTSIZE; i++) { crc = (crc ^ p.packet[i]) << 1; }",
        );
        // Reference computation in Rust.
        let mut crc: u32 = 0;
        for i in 0..8u32 {
            crc = (crc ^ (i + 1)) << 1;
        }
        assert_eq!(int_var(&m, "crc") as u32, crc);
    }

    #[test]
    fn struct_and_union_access() {
        let m = run(
            "typedef unsigned char byte;\
             typedef struct { byte a[2]; byte b[2]; } two_t;\
             typedef union { byte raw[4]; two_t parts; } u_t;",
            "u_t u; u.raw[0] = 1; u.raw[1] = 2; u.raw[2] = 3; u.raw[3] = 4; \
             int x = u.parts.b[0]; int y = u.parts.b[1];",
        );
        assert_eq!(int_var(&m, "x"), 3);
        assert_eq!(int_var(&m, "y"), 4);
    }

    #[test]
    fn function_calls() {
        let m = run(
            "int add(int a, int b) { return a + b; }\
             int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
            "int s = add(2, 3); int f = fib(10);",
        );
        assert_eq!(int_var(&m, "s"), 5);
        assert_eq!(int_var(&m, "f"), 55);
    }

    #[test]
    fn switch_with_fallthrough() {
        let m = run(
            "",
            "int x = 2; int r = 0; \
             switch (x) { case 1: r += 1; case 2: r += 10; case 3: r += 100; break; default: r = -1; }",
        );
        assert_eq!(int_var(&m, "r"), 110);
    }

    #[test]
    fn switch_default() {
        let m = run(
            "",
            "int x = 99; int r = 0; switch (x) { case 1: r = 1; break; default: r = 7; }",
        );
        assert_eq!(int_var(&m, "r"), 7);
    }

    #[test]
    fn unsigned_semantics() {
        let m = run(
            "",
            "unsigned int u = 0; u = u - 1; int big = u > 100; \
             unsigned int h = u >> 28;",
        );
        assert_eq!(int_var(&m, "big"), 1); // 0xFFFFFFFF > 100 unsigned
        assert_eq!(int_var(&m, "h"), 0xF);
    }

    #[test]
    fn division_by_zero_reported() {
        let src = "void t() { int x = 1 / 0; }";
        let prog = parse_str(src).unwrap();
        let mut sink = DiagSink::new();
        let table = TypeTable::build(&prog, &mut sink);
        let mut m = Machine::new(table);
        let f = prog.functions().next().unwrap();
        let s = &f.body.as_ref().unwrap().stmts[0];
        assert!(m.exec(s, &NoSignals).is_err());
    }

    #[test]
    fn fuel_stops_infinite_loop() {
        let src = "void t() { while (1) { } }";
        let prog = parse_str(src).unwrap();
        let mut sink = DiagSink::new();
        let table = TypeTable::build(&prog, &mut sink);
        let mut m = Machine::new(table);
        m.set_fuel(10_000);
        let f = prog.functions().next().unwrap();
        let s = &f.body.as_ref().unwrap().stmts[0];
        let e = m.exec(s, &NoSignals).unwrap_err();
        assert!(e.msg.contains("fuel"), "{e}");
    }

    #[test]
    fn signal_values_resolve_via_reader() {
        struct OneSig(TypeId);
        impl SignalReader for OneSig {
            fn read_signal(&self, name: &str) -> Option<Value> {
                (name == "in_byte").then(|| Value {
                    ty: self.0,
                    bytes: vec![7].into(),
                })
            }
        }
        let prog = parse_str("void t() { int x; x = in_byte + 1; }").unwrap();
        let mut sink = DiagSink::new();
        let table = TypeTable::build(&prog, &mut sink);
        let mut m = Machine::new(table);
        let uc = m.table_mut().uchar();
        let f = prog.functions().next().unwrap();
        for s in &f.body.as_ref().unwrap().stmts {
            m.exec(s, &OneSig(uc)).unwrap();
        }
        assert_eq!(int_var(&m, "x"), 8);
    }

    #[test]
    fn reactive_statement_rejected() {
        let prog = parse_str("module m(input pure a) { await (a); }").unwrap();
        let m_ast = prog.module("m").unwrap();
        let mut sink = DiagSink::new();
        let table = TypeTable::build(&prog, &mut sink);
        let mut m = Machine::new(table);
        assert!(m.exec(&m_ast.body.stmts[0], &NoSignals).is_err());
    }

    #[test]
    fn ternary_and_comma() {
        let m = run(
            "",
            "int x = 5; int y = x > 3 ? 1 : 2; int z = (x = 9, x + 1);",
        );
        assert_eq!(int_var(&m, "y"), 1);
        assert_eq!(int_var(&m, "z"), 10);
    }

    #[test]
    fn out_of_bounds_index_is_error() {
        let prog = parse_str("void t() { int a[3]; a[5] = 1; }").unwrap();
        let mut sink = DiagSink::new();
        let table = TypeTable::build(&prog, &mut sink);
        let mut m = Machine::new(table);
        let f = prog.functions().next().unwrap();
        let stmts = &f.body.as_ref().unwrap().stmts;
        m.exec(&stmts[0], &NoSignals).unwrap();
        assert!(m.exec(&stmts[1], &NoSignals).is_err());
    }

    #[test]
    fn sizeof_works() {
        let m = run(
            "typedef struct { int a; char c; } s_t;",
            "int x = sizeof(s_t); int y = sizeof(int);",
        );
        assert_eq!(int_var(&m, "x"), 8);
        assert_eq!(int_var(&m, "y"), 4);
    }

    #[test]
    fn aggregate_assignment_copies_bytes() {
        let m = run(
            "typedef unsigned char byte; typedef struct { byte d[3]; } b_t;",
            "b_t a; b_t b; a.d[1] = 42; b = a; int x = b.d[1];",
        );
        assert_eq!(int_var(&m, "x"), 42);
    }
}
