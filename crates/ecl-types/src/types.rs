//! Resolved types and data layout.
//!
//! [`TypeTable`] interns every type used by a program and computes sizes,
//! alignments and field offsets with the rules of a 32-bit MIPS o32-style
//! ABI (the paper's target is a MIPS R3000): `char` 1, `short` 2,
//! `int`/`long`/pointers 4, `float` 4, `double` 8/align 8; structs pad
//! fields to their alignment and the struct size to the maximum field
//! alignment; unions take the maximum size; arrays multiply.

use crate::consteval::{self, ConstEnv};
use ecl_syntax::ast::{self, PrimType, TypeRef, TypeRefKind};
use ecl_syntax::diag::DiagSink;
use ecl_syntax::source::Span;
use std::collections::HashMap;
use std::fmt;

/// Interned type handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Handle for a struct/union definition in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId(pub u32);

/// A resolved type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — size 0, only valid as a function return type.
    Void,
    /// `bool` — 1 byte, values 0/1.
    Bool,
    /// Signed 8-bit.
    Char,
    /// Unsigned 8-bit (the paper's `byte` typedef resolves here).
    UChar,
    /// Signed 16-bit.
    Short,
    /// Unsigned 16-bit.
    UShort,
    /// Signed 32-bit.
    Int,
    /// Unsigned 32-bit.
    UInt,
    /// Signed 32-bit (`long` on the 32-bit target).
    Long,
    /// Unsigned 32-bit.
    ULong,
    /// IEEE-754 single.
    Float,
    /// IEEE-754 double.
    Double,
    /// Pointer to another type (4 bytes on the target).
    Pointer(TypeId),
    /// Fixed-length array.
    Array(TypeId, u32),
    /// Struct with laid-out fields.
    Struct(RecordId),
    /// Union (fields all at offset 0).
    Union(RecordId),
    /// Enum — represented as `int`.
    Enum(RecordId),
}

impl Type {
    /// Is this an integer type (including `bool`, `char`, enums)?
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Bool
                | Type::Char
                | Type::UChar
                | Type::Short
                | Type::UShort
                | Type::Int
                | Type::UInt
                | Type::Long
                | Type::ULong
                | Type::Enum(_)
        )
    }

    /// Is this a floating type?
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Is this an unsigned integer type?
    pub fn is_unsigned(&self) -> bool {
        matches!(
            self,
            Type::Bool | Type::UChar | Type::UShort | Type::UInt | Type::ULong
        )
    }

    /// Is this any scalar (integer, float or pointer)?
    pub fn is_scalar(&self) -> bool {
        self.is_integer() || self.is_float() || matches!(self, Type::Pointer(_))
    }
}

/// One laid-out field of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// Byte offset from the start of the record (0 for union fields).
    pub offset: u32,
}

/// A struct or union definition with computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Tag or typedef-derived name, if any (for printing).
    pub name: Option<String>,
    /// Laid-out fields.
    pub fields: Vec<Field>,
    /// Total size in bytes (padded).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
    /// True for unions.
    pub is_union: bool,
}

impl Record {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Interner and layout engine for all types in a program.
#[derive(Debug, Clone)]
pub struct TypeTable {
    types: Vec<Type>,
    intern: HashMap<Type, TypeId>,
    records: Vec<Record>,
    typedefs: HashMap<String, TypeId>,
    struct_tags: HashMap<String, TypeId>,
    union_tags: HashMap<String, TypeId>,
    enum_tags: HashMap<String, TypeId>,
    /// Enumerator name → value (shared const environment).
    pub enum_consts: HashMap<String, i64>,
}

impl Default for TypeTable {
    fn default() -> Self {
        TypeTable::new()
    }
}

/// The primitives pre-interned by [`TypeTable::new`], in id order —
/// `primitive_id` relies on this exact order.
const PRIMITIVES: [Type; 12] = [
    Type::Void,
    Type::Bool,
    Type::Char,
    Type::UChar,
    Type::Short,
    Type::UShort,
    Type::Int,
    Type::UInt,
    Type::Long,
    Type::ULong,
    Type::Float,
    Type::Double,
];

/// The fixed id of a primitive type (pre-interned by
/// [`TypeTable::new`]), letting the interpreter skip the intern map on
/// its hottest calls.
fn primitive_id(ty: &Type) -> Option<TypeId> {
    let i = match ty {
        Type::Void => 0,
        Type::Bool => 1,
        Type::Char => 2,
        Type::UChar => 3,
        Type::Short => 4,
        Type::UShort => 5,
        Type::Int => 6,
        Type::UInt => 7,
        Type::Long => 8,
        Type::ULong => 9,
        Type::Float => 10,
        Type::Double => 11,
        _ => return None,
    };
    Some(TypeId(i))
}

impl TypeTable {
    /// An empty table with the primitive types pre-interned.
    pub fn new() -> Self {
        let mut t = TypeTable {
            types: Vec::new(),
            intern: HashMap::new(),
            records: Vec::new(),
            typedefs: HashMap::new(),
            struct_tags: HashMap::new(),
            union_tags: HashMap::new(),
            enum_tags: HashMap::new(),
            enum_consts: HashMap::new(),
        };
        // Pre-intern scalars so TypeIds are stable and cheap.
        for ty in PRIMITIVES {
            t.intern_slow(ty);
        }
        t
    }

    /// Build a table from a parsed program: registers all typedefs,
    /// record/enum tags and enumerators, in source order.
    pub fn build(prog: &ast::Program, sink: &mut DiagSink) -> Self {
        let mut t = TypeTable::new();
        for item in &prog.items {
            match item {
                ast::Item::Typedef(td) => {
                    match t.resolve_named(&td.ty, Some(&td.name.name), sink) {
                        Some(id) => {
                            t.typedefs.insert(td.name.name.clone(), id);
                        }
                        None => {
                            sink.error(
                                format!("cannot resolve typedef `{}`", td.name.name),
                                td.span,
                            );
                        }
                    }
                }
                ast::Item::TypeDecl(ty) => {
                    let _ = t.resolve_named(ty, None, sink);
                }
                _ => {}
            }
        }
        t
    }

    /// Intern a resolved type.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(id) = primitive_id(&ty) {
            return id;
        }
        self.intern_slow(ty)
    }

    fn intern_slow(&mut self, ty: Type) -> TypeId {
        if let Some(id) = self.intern.get(&ty) {
            return *id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(ty);
        self.intern.insert(ty, id);
        id
    }

    /// The resolved type behind a handle.
    pub fn get(&self, id: TypeId) -> Type {
        self.types[id.0 as usize]
    }

    /// The record behind a struct/union/enum handle.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.0 as usize]
    }

    /// Look up a typedef by name.
    pub fn typedef(&self, name: &str) -> Option<TypeId> {
        self.typedefs.get(name).copied()
    }

    /// Register a typedef programmatically (used by tests/builders).
    pub fn add_typedef(&mut self, name: &str, id: TypeId) {
        self.typedefs.insert(name.to_string(), id);
    }

    /// Convenience handles for the primitives.
    pub fn prim(&mut self, p: PrimType) -> TypeId {
        let ty = match p {
            PrimType::Void => Type::Void,
            PrimType::Bool => Type::Bool,
            PrimType::Char => Type::Char,
            PrimType::UChar => Type::UChar,
            PrimType::Short => Type::Short,
            PrimType::UShort => Type::UShort,
            PrimType::Int => Type::Int,
            PrimType::UInt => Type::UInt,
            PrimType::Long => Type::Long,
            PrimType::ULong => Type::ULong,
            PrimType::Float => Type::Float,
            PrimType::Double => Type::Double,
        };
        self.intern(ty)
    }

    /// Shorthand: the `int` type.
    pub fn int(&mut self) -> TypeId {
        self.intern(Type::Int)
    }

    /// Shorthand: the `bool` type.
    pub fn bool(&mut self) -> TypeId {
        self.intern(Type::Bool)
    }

    /// Shorthand: the `unsigned char` type.
    pub fn uchar(&mut self) -> TypeId {
        self.intern(Type::UChar)
    }

    /// Resolve a syntactic type reference to a [`TypeId`].
    ///
    /// Array lengths are constant-folded using the enumerators seen so
    /// far. Unresolvable references produce a diagnostic and `None`.
    pub fn resolve(&mut self, ty: &TypeRef, sink: &mut DiagSink) -> Option<TypeId> {
        self.resolve_named(ty, None, sink)
    }

    fn resolve_named(
        &mut self,
        ty: &TypeRef,
        name_hint: Option<&str>,
        sink: &mut DiagSink,
    ) -> Option<TypeId> {
        match &ty.kind {
            TypeRefKind::Prim(p) => Some(self.prim(*p)),
            TypeRefKind::Named(id) => match self.typedef(&id.name) {
                Some(t) => Some(t),
                None => {
                    sink.error(format!("unknown type name `{}`", id.name), id.span);
                    None
                }
            },
            TypeRefKind::Pointer(inner) => {
                let i = self.resolve(inner, sink)?;
                Some(self.intern(Type::Pointer(i)))
            }
            TypeRefKind::Array(inner, len) => {
                let i = self.resolve(inner, sink)?;
                let n = match len {
                    Some(e) => {
                        let env = ConstEnv {
                            consts: &self.enum_consts,
                        };
                        match consteval::eval(e, &env) {
                            Ok(v) if v >= 0 && v <= u32::MAX as i64 => v as u32,
                            Ok(v) => {
                                sink.error(format!("array length {v} out of range"), e.span);
                                return None;
                            }
                            Err(err) => {
                                sink.error(
                                    format!("array length is not a constant: {err}"),
                                    e.span,
                                );
                                return None;
                            }
                        }
                    }
                    None => {
                        sink.error("array type needs a length here", ty.span);
                        return None;
                    }
                };
                Some(self.intern(Type::Array(i, n)))
            }
            TypeRefKind::Struct(r) | TypeRefKind::Union(r) => {
                let is_union = matches!(ty.kind, TypeRefKind::Union(_));
                self.resolve_record(r, is_union, name_hint, ty.span, sink)
            }
            TypeRefKind::Enum(e) => self.resolve_enum(e, name_hint, ty.span, sink),
        }
    }

    fn resolve_record(
        &mut self,
        r: &ast::RecordRef,
        is_union: bool,
        name_hint: Option<&str>,
        span: Span,
        sink: &mut DiagSink,
    ) -> Option<TypeId> {
        let tags = if is_union {
            &self.union_tags
        } else {
            &self.struct_tags
        };
        if r.fields.is_none() {
            // Pure reference by tag.
            let tag = r.tag.as_ref()?;
            return match tags.get(&tag.name) {
                Some(id) => Some(*id),
                None => {
                    sink.error(
                        format!(
                            "unknown {} tag `{}`",
                            if is_union { "union" } else { "struct" },
                            tag.name
                        ),
                        tag.span,
                    );
                    None
                }
            };
        }
        // Definition: lay out the fields.
        let fields_ast = r.fields.as_ref().expect("checked above");
        let mut fields = Vec::new();
        let mut offset = 0u32;
        let mut max_align = 1u32;
        let mut max_size = 0u32;
        for f in fields_ast {
            let fty = self.resolve(&f.ty, sink)?;
            let fsize = self.size_of(fty);
            let falign = self.align_of(fty);
            max_align = max_align.max(falign);
            let foff = if is_union {
                0
            } else {
                let aligned = align_up(offset, falign);
                offset = aligned + fsize;
                aligned
            };
            max_size = max_size.max(fsize);
            fields.push(Field {
                name: f.name.name.clone(),
                ty: fty,
                offset: foff,
            });
        }
        let size = if is_union {
            align_up(max_size, max_align)
        } else {
            align_up(offset, max_align)
        };
        let name = r
            .tag
            .as_ref()
            .map(|t| t.name.clone())
            .or_else(|| name_hint.map(str::to_string));
        let rec_id = RecordId(self.records.len() as u32);
        self.records.push(Record {
            name,
            fields,
            size,
            align: max_align,
            is_union,
        });
        let ty = if is_union {
            Type::Union(rec_id)
        } else {
            Type::Struct(rec_id)
        };
        let id = self.intern(ty);
        if let Some(tag) = &r.tag {
            let tags = if is_union {
                &mut self.union_tags
            } else {
                &mut self.struct_tags
            };
            if tags.insert(tag.name.clone(), id).is_some() {
                sink.warning(format!("tag `{}` redefined", tag.name), span);
            }
        }
        Some(id)
    }

    fn resolve_enum(
        &mut self,
        e: &ast::EnumRef,
        name_hint: Option<&str>,
        span: Span,
        sink: &mut DiagSink,
    ) -> Option<TypeId> {
        if e.variants.is_none() {
            let tag = e.tag.as_ref()?;
            return match self.enum_tags.get(&tag.name) {
                Some(id) => Some(*id),
                None => {
                    sink.error(format!("unknown enum tag `{}`", tag.name), tag.span);
                    None
                }
            };
        }
        let mut next = 0i64;
        let mut fields = Vec::new();
        for v in e.variants.as_ref().expect("checked above") {
            let val = match &v.value {
                Some(expr) => {
                    let env = ConstEnv {
                        consts: &self.enum_consts,
                    };
                    match consteval::eval(expr, &env) {
                        Ok(x) => x,
                        Err(err) => {
                            sink.error(format!("enumerator value not constant: {err}"), expr.span);
                            next
                        }
                    }
                }
                None => next,
            };
            next = val + 1;
            self.enum_consts.insert(v.name.name.clone(), val);
            fields.push(Field {
                name: v.name.name.clone(),
                ty: TypeId(6), // Int — index per `TypeTable::new` ordering
                offset: val as u32,
            });
        }
        let name = e
            .tag
            .as_ref()
            .map(|t| t.name.clone())
            .or_else(|| name_hint.map(str::to_string));
        let rec_id = RecordId(self.records.len() as u32);
        self.records.push(Record {
            name,
            fields,
            size: 4,
            align: 4,
            is_union: false,
        });
        let id = self.intern(Type::Enum(rec_id));
        if let Some(tag) = &e.tag {
            if self.enum_tags.insert(tag.name.clone(), id).is_some() {
                sink.warning(format!("enum tag `{}` redefined", tag.name), span);
            }
        }
        Some(id)
    }

    /// Size of a type in bytes (target: 32-bit MIPS-style ABI).
    pub fn size_of(&self, id: TypeId) -> u32 {
        match self.get(id) {
            Type::Void => 0,
            Type::Bool | Type::Char | Type::UChar => 1,
            Type::Short | Type::UShort => 2,
            Type::Int | Type::UInt | Type::Long | Type::ULong | Type::Float => 4,
            Type::Double => 8,
            Type::Pointer(_) => 4,
            Type::Array(elem, n) => self.size_of(elem) * n,
            Type::Struct(r) | Type::Union(r) => self.record(r).size,
            Type::Enum(_) => 4,
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, id: TypeId) -> u32 {
        match self.get(id) {
            Type::Void => 1,
            Type::Bool | Type::Char | Type::UChar => 1,
            Type::Short | Type::UShort => 2,
            Type::Int | Type::UInt | Type::Long | Type::ULong | Type::Float => 4,
            Type::Double => 8,
            Type::Pointer(_) => 4,
            Type::Array(elem, _) => self.align_of(elem),
            Type::Struct(r) | Type::Union(r) => self.record(r).align,
            Type::Enum(_) => 4,
        }
    }

    /// Human-readable name of a type (for diagnostics and codegen).
    pub fn name_of(&self, id: TypeId) -> String {
        match self.get(id) {
            Type::Void => "void".into(),
            Type::Bool => "bool".into(),
            Type::Char => "char".into(),
            Type::UChar => "unsigned char".into(),
            Type::Short => "short".into(),
            Type::UShort => "unsigned short".into(),
            Type::Int => "int".into(),
            Type::UInt => "unsigned int".into(),
            Type::Long => "long".into(),
            Type::ULong => "unsigned long".into(),
            Type::Float => "float".into(),
            Type::Double => "double".into(),
            Type::Pointer(p) => format!("{} *", self.name_of(p)),
            Type::Array(e, n) => format!("{}[{n}]", self.name_of(e)),
            Type::Struct(r) => format!(
                "struct {}",
                self.record(r).name.as_deref().unwrap_or("<anon>")
            ),
            Type::Union(r) => format!(
                "union {}",
                self.record(r).name.as_deref().unwrap_or("<anon>")
            ),
            Type::Enum(r) => format!(
                "enum {}",
                self.record(r).name.as_deref().unwrap_or("<anon>")
            ),
        }
    }
}

impl fmt::Display for TypeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TypeTable with {} types:", self.types.len())?;
        for (name, id) in &self.typedefs {
            writeln!(f, "  typedef {name} = {}", self.name_of(*id))?;
        }
        Ok(())
    }
}

/// Round `x` up to a multiple of `align` (which must be a power of two
/// in practice, though the formula works for any positive value).
pub fn align_up(x: u32, align: u32) -> u32 {
    debug_assert!(align > 0, "alignment must be positive");
    x.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_syntax::parse_str;

    fn build(src: &str) -> (TypeTable, DiagSink) {
        let prog = parse_str(src).expect("parse");
        let mut sink = DiagSink::new();
        let t = TypeTable::build(&prog, &mut sink);
        (t, sink)
    }

    #[test]
    fn scalar_sizes_match_mips_abi() {
        let mut t = TypeTable::new();
        for (ty, size) in [
            (Type::Char, 1),
            (Type::Short, 2),
            (Type::Int, 4),
            (Type::Long, 4),
            (Type::Double, 8),
        ] {
            let id = t.intern(ty);
            assert_eq!(t.size_of(id), size, "{ty:?}");
        }
        let i = t.int();
        let p = t.intern(Type::Pointer(i));
        assert_eq!(t.size_of(p), 4);
    }

    #[test]
    fn paper_packet_layout() {
        // The exact declarations from Figure 1 of the paper.
        let (t, sink) = build(
            "#define HDRSIZE 6\n#define DATASIZE 56\n#define CRCSIZE 2\n\
             #define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE\n\
             typedef unsigned char byte;\n\
             typedef struct { byte packet[PKTSIZE]; } packet_view_1_t;\n\
             typedef struct { byte header[HDRSIZE]; byte data[DATASIZE]; byte crc[CRCSIZE]; } packet_view_2_t;\n\
             typedef union { packet_view_1_t raw; packet_view_2_t cooked; } packet_t;\n",
        );
        assert!(!sink.has_errors(), "{sink}");
        let pkt = t.typedef("packet_t").unwrap();
        assert_eq!(t.size_of(pkt), 64);
        let Type::Union(r) = t.get(pkt) else {
            panic!("expected union")
        };
        let rec = t.record(r);
        assert!(rec.is_union);
        assert_eq!(rec.fields.len(), 2);
        assert_eq!(rec.fields[0].offset, 0);
        assert_eq!(rec.fields[1].offset, 0);
        // The cooked view: crc lives at offset 62 within its struct.
        let v2 = t.typedef("packet_view_2_t").unwrap();
        let Type::Struct(r2) = t.get(v2) else {
            panic!()
        };
        assert_eq!(t.record(r2).field("crc").unwrap().offset, 62);
    }

    #[test]
    fn struct_padding_and_alignment() {
        let (t, sink) = build("typedef struct { char c; int i; char d; } s_t;");
        assert!(!sink.has_errors());
        let s = t.typedef("s_t").unwrap();
        // c at 0, pad to 4, i at 4..8, d at 8, pad to 12.
        assert_eq!(t.size_of(s), 12);
        assert_eq!(t.align_of(s), 4);
        let Type::Struct(r) = t.get(s) else { panic!() };
        let rec = t.record(r);
        assert_eq!(rec.field("i").unwrap().offset, 4);
        assert_eq!(rec.field("d").unwrap().offset, 8);
    }

    #[test]
    fn double_alignment() {
        let (t, _) = build("typedef struct { char c; double d; } s_t;");
        let s = t.typedef("s_t").unwrap();
        assert_eq!(t.size_of(s), 16);
        assert_eq!(t.align_of(s), 8);
    }

    #[test]
    fn enums_register_constants() {
        let (t, sink) = build("typedef enum { IDLE, RUN = 5, DONE } mode_t;");
        assert!(!sink.has_errors());
        assert_eq!(t.enum_consts["IDLE"], 0);
        assert_eq!(t.enum_consts["RUN"], 5);
        assert_eq!(t.enum_consts["DONE"], 6);
        let m = t.typedef("mode_t").unwrap();
        assert_eq!(t.size_of(m), 4);
    }

    #[test]
    fn unknown_type_name_is_error() {
        // The parser already rejects unknown type names (it tracks
        // typedefs for cast disambiguation), so this fails at parse time.
        assert!(parse_str("typedef nothing_t other_t;").is_err());
        // A tag reference to an undefined struct resolves to an error
        // at table-build time.
        let (_, sink) = build("typedef struct nowhere missing_t;");
        assert!(sink.has_errors());
    }

    #[test]
    fn nested_arrays() {
        let (t, _) = build("typedef int grid_t[3][4];");
        let g = t.typedef("grid_t").unwrap();
        assert_eq!(t.size_of(g), 48);
        let Type::Array(row, 3) = t.get(g) else {
            panic!("outer dim should be 3: {:?}", t.get(g))
        };
        assert_eq!(
            t.get(row),
            Type::Array(t.intern.get(&Type::Int).copied().unwrap(), 4)
        );
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 4), 0);
        assert_eq!(align_up(1, 4), 4);
        assert_eq!(align_up(4, 4), 4);
        assert_eq!(align_up(5, 8), 8);
    }

    #[test]
    fn struct_tag_references() {
        let (t, sink) = build(
            "typedef struct pair { int a; int b; } pair_t;\
             typedef struct pair same_t;",
        );
        assert!(!sink.has_errors(), "{sink}");
        assert_eq!(t.typedef("pair_t"), t.typedef("same_t"));
    }
}
