//! Byte-level runtime values.
//!
//! A [`Value`] is a typed little-endian byte buffer. Modelling values at
//! the byte level (rather than as a tagged enum of Rust scalars) is what
//! makes C unions behave exactly as in the paper's Figure 1, where the
//! same 64 bytes are viewed either as `packet[64]` or as
//! `header/data/crc` slices.

use crate::types::{Type, TypeId, TypeTable};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Inline capacity of [`Bytes`]: scalars (≤ 8 bytes) and small
/// aggregates never touch the heap.
const INLINE: usize = 16;

/// A small-buffer byte string: the object representation of a
/// [`Value`]. Buffers up to [`INLINE`] bytes live inline (the common
/// case — every C scalar), larger aggregates (packets, frames) spill
/// to the heap. Dereferences to `[u8]`, so indexing, slicing and
/// iteration work as on a `Vec<u8>`.
#[derive(Clone)]
pub enum Bytes {
    /// Inline storage: `data[..len]` is the value.
    Inline {
        /// Number of live bytes.
        len: u8,
        /// Backing store (only `[..len]` is meaningful).
        data: [u8; INLINE],
    },
    /// Heap storage for large aggregates.
    Heap(Vec<u8>),
}

impl Bytes {
    /// A zero-filled buffer of `n` bytes.
    pub fn zeroed(n: usize) -> Bytes {
        if n <= INLINE {
            Bytes::Inline {
                len: n as u8,
                data: [0; INLINE],
            }
        } else {
            Bytes::Heap(vec![0; n])
        }
    }

    /// Copy a slice.
    pub fn from_slice(s: &[u8]) -> Bytes {
        if s.len() <= INLINE {
            let mut data = [0; INLINE];
            data[..s.len()].copy_from_slice(s);
            Bytes::Inline {
                len: s.len() as u8,
                data,
            }
        } else {
            Bytes::Heap(s.to_vec())
        }
    }

    /// Shorten to `n` bytes (no-op when already shorter).
    pub fn truncate(&mut self, n: usize) {
        match self {
            Bytes::Inline { len, .. } => *len = (*len).min(n as u8),
            Bytes::Heap(v) => v.truncate(n),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Bytes::Inline { len, data } => &data[..*len as usize],
            Bytes::Heap(v) => v,
        }
    }
}

impl DerefMut for Bytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        match self {
            Bytes::Inline { len, data } => &mut data[..*len as usize],
            Bytes::Heap(v) => v,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self[..], f)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.len() <= INLINE {
            Bytes::from_slice(&v)
        } else {
            Bytes::Heap(v)
        }
    }
}

/// A typed runtime value: `bytes.len() == table.size_of(ty)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Value {
    /// The value's type.
    pub ty: TypeId,
    /// Little-endian object representation.
    pub bytes: Bytes,
}

impl Value {
    /// A zero-initialized value of type `ty`.
    pub fn zero(table: &TypeTable, ty: TypeId) -> Value {
        Value {
            ty,
            bytes: Bytes::zeroed(table.size_of(ty) as usize),
        }
    }

    /// Build an integer-typed value from an `i64`, truncating to the
    /// type's width (C conversion semantics).
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a scalar type.
    pub fn from_i64(table: &TypeTable, ty: TypeId, v: i64) -> Value {
        let size = table.size_of(ty) as usize;
        let t = table.get(ty);
        assert!(
            t.is_integer() || matches!(t, Type::Pointer(_)),
            "from_i64 on non-integer type {}",
            table.name_of(ty)
        );
        let le = v.to_le_bytes();
        let mut bytes = Bytes::from_slice(&le[..size.min(8)]);
        if t == Type::Bool {
            bytes[0] = (v != 0) as u8;
        }
        Value { ty, bytes }
    }

    /// Build a float-typed value.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not `float` or `double`.
    pub fn from_f64(table: &TypeTable, ty: TypeId, v: f64) -> Value {
        match table.get(ty) {
            Type::Float => Value {
                ty,
                bytes: Bytes::from_slice(&(v as f32).to_le_bytes()),
            },
            Type::Double => Value {
                ty,
                bytes: Bytes::from_slice(&v.to_le_bytes()),
            },
            other => panic!("from_f64 on non-float type {other:?}"),
        }
    }

    /// Read an integer-typed value as `i64` with C sign/zero extension.
    ///
    /// # Panics
    ///
    /// Panics if the value is not integer- or pointer-typed.
    pub fn as_i64(&self, table: &TypeTable) -> i64 {
        let t = table.get(self.ty);
        assert!(
            t.is_integer() || matches!(t, Type::Pointer(_)),
            "as_i64 on non-integer type {}",
            table.name_of(self.ty)
        );
        let mut buf = [0u8; 8];
        let n = self.bytes.len().min(8);
        buf[..n].copy_from_slice(&self.bytes[..n]);
        let raw = i64::from_le_bytes(buf);
        let bits = n as u32 * 8;
        if bits >= 64 {
            return raw;
        }
        if t.is_unsigned() || matches!(t, Type::Pointer(_)) {
            raw & ((1i64 << bits) - 1)
        } else {
            // Sign extend.
            let shift = 64 - bits;
            (raw << shift) >> shift
        }
    }

    /// Read a float-typed value as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not float-typed.
    pub fn as_f64(&self, table: &TypeTable) -> f64 {
        match table.get(self.ty) {
            Type::Float => {
                f32::from_le_bytes(self.bytes[..4].try_into().expect("f32 width")) as f64
            }
            Type::Double => f64::from_le_bytes(self.bytes[..8].try_into().expect("f64 width")),
            other => panic!("as_f64 on non-float {other:?}"),
        }
    }

    /// C truthiness: any non-zero byte makes a value true.
    pub fn is_truthy(&self) -> bool {
        self.bytes.iter().any(|b| *b != 0)
    }

    /// Copy `src` into this value at `offset` (aggregate field write).
    ///
    /// # Panics
    ///
    /// Panics if the byte range is out of bounds.
    pub fn write_at(&mut self, offset: u32, src: &Value) {
        let o = offset as usize;
        self.bytes[o..o + src.bytes.len()].copy_from_slice(&src.bytes);
    }

    /// Extract a field/element of type `ty` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the byte range is out of bounds.
    pub fn read_at(&self, table: &TypeTable, offset: u32, ty: TypeId) -> Value {
        let o = offset as usize;
        let n = table.size_of(ty) as usize;
        Value {
            ty,
            bytes: Bytes::from_slice(&self.bytes[o..o + n]),
        }
    }

    /// Convert to another scalar type with C conversion rules; also
    /// implements the reproduction's "small array to integer bit-cast"
    /// extension used by Figure 2's `(int) inpkt.cooked.crc` (see
    /// DESIGN.md).
    pub fn convert(&self, table: &TypeTable, to: TypeId) -> Option<Value> {
        if self.ty == to {
            return Some(self.clone());
        }
        let from_t = table.get(self.ty);
        let to_t = table.get(to);
        // Array → integer bit-cast extension.
        if let Type::Array(elem, _) = from_t {
            if to_t.is_integer() && table.get(elem).is_integer() && self.bytes.len() <= 8 {
                let mut buf = [0u8; 8];
                buf[..self.bytes.len()].copy_from_slice(&self.bytes);
                let raw = i64::from_le_bytes(buf);
                return Some(Value::from_i64(table, to, raw));
            }
            return None;
        }
        match (from_t.is_float(), to_t.is_float()) {
            (false, false) if from_t.is_scalar() && to_t.is_scalar() => {
                Some(Value::from_i64(table, to, self.as_i64(table)))
            }
            (true, false) if to_t.is_integer() => {
                Some(Value::from_i64(table, to, self.as_f64(table) as i64))
            }
            (false, true) if from_t.is_scalar() => {
                Some(Value::from_f64(table, to, self.as_i64(table) as f64))
            }
            (true, true) => Some(Value::from_f64(table, to, self.as_f64(table))),
            _ => None,
        }
    }

    /// Render for traces and debugging.
    pub fn render(&self, table: &TypeTable) -> String {
        let t = table.get(self.ty);
        if t.is_integer() {
            format!("{}", self.as_i64(table))
        } else if t.is_float() {
            format!("{}", self.as_f64(table))
        } else {
            let hex: Vec<String> = self.bytes.iter().map(|b| format!("{b:02x}")).collect();
            format!("0x[{}]", hex.join(""))
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Without a table we can only show raw bytes.
        write!(f, "Value({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;
    use ecl_syntax::parse_str;

    fn table() -> TypeTable {
        TypeTable::new()
    }

    #[test]
    fn int_round_trip_with_sign_extension() {
        let mut t = table();
        let int = t.int();
        let ch = t.intern(Type::Char);
        let uc = t.uchar();
        assert_eq!(Value::from_i64(&t, int, -5).as_i64(&t), -5);
        assert_eq!(Value::from_i64(&t, ch, -1).as_i64(&t), -1);
        assert_eq!(Value::from_i64(&t, uc, -1).as_i64(&t), 255);
        assert_eq!(Value::from_i64(&t, ch, 130).as_i64(&t), -126); // wraps
    }

    #[test]
    fn bool_normalizes() {
        let mut t = table();
        let b = t.bool();
        assert_eq!(Value::from_i64(&t, b, 42).as_i64(&t), 1);
        assert_eq!(Value::from_i64(&t, b, 0).as_i64(&t), 0);
    }

    #[test]
    fn float_round_trip() {
        let mut t = table();
        let f = t.intern(Type::Float);
        let d = t.intern(Type::Double);
        assert_eq!(Value::from_f64(&t, d, 1.5).as_f64(&t), 1.5);
        assert_eq!(Value::from_f64(&t, f, 2.25).as_f64(&t), 2.25);
    }

    #[test]
    fn conversions() {
        let mut t = table();
        let int = t.int();
        let sh = t.intern(Type::Short);
        let d = t.intern(Type::Double);
        let v = Value::from_i64(&t, int, 70000);
        // int → short truncates.
        assert_eq!(v.convert(&t, sh).unwrap().as_i64(&t), 70000 - 65536);
        // int → double.
        assert_eq!(v.convert(&t, d).unwrap().as_f64(&t), 70000.0);
        // double → int truncates toward zero.
        let x = Value::from_f64(&t, d, -2.9);
        assert_eq!(x.convert(&t, int).unwrap().as_i64(&t), -2);
    }

    #[test]
    fn union_views_share_bytes() {
        let prog = parse_str(
            "typedef unsigned char byte;\
             typedef struct { byte all[4]; } v1_t;\
             typedef struct { byte lo[2]; byte hi[2]; } v2_t;\
             typedef union { v1_t raw; v2_t split; } u_t;",
        )
        .unwrap();
        let mut sink = ecl_syntax::DiagSink::new();
        let t = TypeTable::build(&prog, &mut sink);
        let u = t.typedef("u_t").unwrap();
        let mut v = Value::zero(&t, u);
        assert_eq!(v.bytes.len(), 4);
        // Write through the raw view, read through the split view.
        v.bytes.copy_from_slice(&[1, 2, 3, 4]);
        let v2 = t.typedef("v2_t").unwrap();
        let Type::Struct(r) = t.get(v2) else { panic!() };
        let hi = t.record(r).field("hi").unwrap();
        let hi_v = v.read_at(&t, hi.offset, hi.ty);
        assert_eq!(hi_v.bytes, vec![3, 4]);
    }

    #[test]
    fn array_to_int_bitcast_extension() {
        let mut t = table();
        let uc = t.uchar();
        let arr2 = t.intern(Type::Array(uc, 2));
        let int = t.int();
        let v = Value {
            ty: arr2,
            bytes: vec![0x34, 0x12].into(),
        };
        // Little-endian: [0x34, 0x12] = 0x1234.
        assert_eq!(v.convert(&t, int).unwrap().as_i64(&t), 0x1234);
    }

    #[test]
    fn truthiness_over_aggregates() {
        let mut t = table();
        let uc = t.uchar();
        let arr = t.intern(Type::Array(uc, 3));
        let mut v = Value::zero(&t, arr);
        assert!(!v.is_truthy());
        v.bytes[2] = 9;
        assert!(v.is_truthy());
    }

    #[test]
    fn write_and_read_at() {
        let mut t = table();
        let uc = t.uchar();
        let arr = t.intern(Type::Array(uc, 4));
        let mut v = Value::zero(&t, arr);
        let b = Value::from_i64(&t, uc, 0xAB);
        v.write_at(2, &b);
        assert_eq!(v.bytes, vec![0, 0, 0xAB, 0]);
        assert_eq!(v.read_at(&t, 2, uc).as_i64(&t), 0xAB);
    }
}
