//! AST → bytecode lowering for the EFSM data path.
//!
//! At runtime construction, every data hook (predicate expression,
//! action statement list, valued-emit expression) is compiled once into
//! a [`Program`] of flat [`Op`]s (see [`crate::vm`]). The compiler
//! resolves every name *now* — module locals to their dense root-scope
//! slots (PR 3's flat frame doubles as the variable side of the
//! register file), valued signals to their signal indices, enum
//! constants to immediates — so the hot path never touches a string or
//! a hash map.
//!
//! ## The bytecode subset
//!
//! Lowerable: integer-scalar arithmetic/comparison/logic with C
//! promotion and conversion semantics, reads of integer-typed signal
//! values, static projection chains (`var.field.arr[i]`,
//! `sig.field[i]`) with bounds-checked dynamic indices, assignments
//! (simple and compound) and `++`/`--`, `if`/`while`/`do`/`for` with
//! `break`/`continue`/`return`, block-scoped integer locals (compiled
//! to registers), integer casts, `sizeof`, ternary and comma, and
//! whole-aggregate `emit_v (sig, var)` copies.
//!
//! Everything else — function calls, floats, `switch`, aggregate
//! rvalues, string/pointer operations — compiles to
//! [`Op::FallbackStmt`] at statement granularity: the subtree executes
//! through the tree-walker with its control-flow result mapped back
//! onto compiled jump targets. A hook whose shape the subset cannot
//! express at all stays [`Compiled::Walker`].
//!
//! ## Exactness rules
//!
//! * **Fuel**: the walker burns one fuel unit per AST node it
//!   evaluates/executes. Lowering counts those burns per control-flow
//!   segment and emits coalesced [`Op::Burn`]s, flushed before every
//!   jump, label, store and fallible op — total consumption is
//!   bit-identical on every successful path (and errors still observe
//!   every burn that precedes them).
//! * **Declarations**: a `Decl` at action top level would create a
//!   *persistent* root-scope binding, so such actions stay on the
//!   walker. Block-scoped declarations become registers; if anything
//!   inside a scope with register locals fails to lower, the whole
//!   scope-owning construct falls back (a walker-executed statement
//!   must never reference a register-resident local).
//! * **Validity**: compiled slot resolutions are valid as long as the
//!   root scope hasn't grown ([`Machine::root_len`] is checked at
//!   dispatch; root bindings are append-only).

use crate::interp::Machine;
use crate::types::{Type, TypeId};
use crate::vm::{BinKind, Compiled, Ext, Op, Program, UnKind};
use ecl_syntax::ast::{BinOp, Expr, ExprKind, Ident, Stmt, StmtKind, UnOp, VarDecl};
use ecl_syntax::diag::DiagSink;
use ecl_syntax::source::Span;

/// Compile-time signal name resolution: `name → (signal index, value
/// type if valued)`. The runtime implements this over its signal table.
pub trait SignalLayout {
    /// Resolve a signal name seen in data code.
    fn signal(&self, name: &str) -> Option<(usize, Option<TypeId>)>;
}

/// Marker: the construct is outside the bytecode subset.
struct Unsupported;

type Lower<T> = Result<T, Unsupported>;

/// Hard cap on the register file (deep expressions beyond this fall
/// back to the walker instead of growing without bound).
const MAX_REGS: u16 = 4096;

/// What an identifier means at the point of lowering.
enum Res {
    /// Block-scoped register local.
    Local(u16, TypeId),
    /// Root-scope variable slot.
    Var(usize, TypeId),
    /// Valued signal.
    Sig(usize, TypeId),
    /// Enum constant.
    Enum(i64),
}

/// Where a resolved lvalue lives.
enum PlaceKind {
    /// A register local (always a whole scalar).
    Local(u16),
    /// A root-scope slot, with a byte window into it.
    Var { slot: u32, off: Off },
}

/// Byte offset of a projection leaf.
#[derive(Clone, Copy)]
enum Off {
    /// The whole slot.
    Whole,
    /// Compile-time constant offset.
    Static(u32),
    /// Offset computed into a register (dynamic indices involved).
    Dyn(u16),
}

/// A resolved lvalue: location + leaf scalar type.
struct Place {
    kind: PlaceKind,
    ty: TypeId,
    ext: Ext,
}

/// The bytecode compiler. One instance lowers all hooks of a runtime;
/// internal state is reset per program.
pub struct Lowering<'a> {
    m: &'a mut Machine,
    sigs: &'a dyn SignalLayout,
    ops: Vec<Op>,
    /// Label id → op index (`u32::MAX` while unbound).
    labels: Vec<u32>,
    /// Coalesced walker-equivalent burns not yet emitted.
    pending: u32,
    pending_span: Span,
    next_reg: u16,
    max_reg: u16,
    /// Lexical scopes of register locals (block declarations).
    scopes: Vec<Vec<(String, u16, TypeId)>>,
    /// Total register locals currently in scope (fallback guard).
    locals_count: u32,
    /// `(break target, continue target)` per enclosing loop.
    loops: Vec<(u32, u32)>,
    /// End label of the current top-level statement (`return` target;
    /// `run_action` ignores flows between top-level statements).
    stmt_end: u32,
    /// Cloned fallback statement subtrees.
    stmts: Vec<Stmt>,
}

impl<'a> Lowering<'a> {
    /// Create a compiler over the machine (types + root frame) and the
    /// signal layout.
    pub fn new(m: &'a mut Machine, sigs: &'a dyn SignalLayout) -> Lowering<'a> {
        Lowering {
            m,
            sigs,
            ops: Vec::new(),
            labels: Vec::new(),
            pending: 0,
            pending_span: Span::dummy(),
            next_reg: 0,
            max_reg: 0,
            scopes: Vec::new(),
            locals_count: 0,
            loops: Vec::new(),
            stmt_end: 0,
            stmts: Vec::new(),
        }
    }

    /// Compile a predicate expression (result = truthiness register).
    pub fn pred(&mut self, e: &Expr) -> Compiled {
        self.reset();
        match self.expr(e) {
            Ok((r, _)) => self.finish(r),
            Err(Unsupported) => Compiled::Walker,
        }
    }

    /// Compile an action (a statement list run at root scope).
    pub fn action(&mut self, stmts: &[Stmt]) -> Compiled {
        // A top-level `Decl` would create a *persistent* root binding
        // (visible to every other hook) — exactly what the walker must
        // keep doing.
        if stmts.iter().any(|s| matches!(s.kind, StmtKind::Decl(_))) {
            return Compiled::Walker;
        }
        self.reset();
        for s in stmts {
            let end = self.label();
            self.stmt_end = end;
            if self.stmt_or_fallback(s).is_err() {
                // Unreachable in practice (top level has no register
                // locals and no bare decls), but falling back keeps
                // semantics exact regardless.
                self.fallback(s);
            }
            self.bind(end);
        }
        // Nothing actually compiled — skip the VM dispatch entirely.
        if self
            .ops
            .iter()
            .all(|op| matches!(op, Op::FallbackStmt { .. }))
        {
            return Compiled::Walker;
        }
        self.finish(0)
    }

    /// Compile a valued-emit expression for signal `sig` (value type
    /// `sig_ty`; `None` marks a pure signal — evaluate and discard,
    /// like the walker).
    pub fn emit(&mut self, e: &Expr, sig: usize, sig_ty: Option<TypeId>) -> Compiled {
        self.reset();
        let Some(ty) = sig_ty else {
            // Pure target: the walker evaluates the expression (burns,
            // errors) and stores nothing.
            return match self.expr(e) {
                Ok((r, _)) => self.finish(r),
                Err(Unsupported) => Compiled::Walker,
            };
        };
        if let Some(sx) = self.ext_of(ty) {
            // Integer-valued signal: evaluate, truncate into the value
            // buffer in place (the walker's convert-and-replace, minus
            // the allocations).
            return match self.expr(e) {
                Ok((r, _)) => {
                    self.flush();
                    self.ops.push(Op::StoreSig {
                        sig: sig as u32,
                        src: r,
                        ext: sx,
                    });
                    self.finish(r)
                }
                Err(Unsupported) => Compiled::Walker,
            };
        }
        // Aggregate signal: the whole-variable copy fast path
        // (`emit_v (outpkt, buffer)`) — same TypeId, so the walker's
        // convert is a byte-identical clone.
        if let ExprKind::Ident(id) = &e.kind {
            if let Some(Res::Var(slot, vt)) = self.resolve(&id.name) {
                if vt == ty {
                    self.burn(e.span);
                    self.flush();
                    self.ops.push(Op::EmitCopy {
                        sig: sig as u32,
                        slot: slot as u32,
                    });
                    return self.finish(0);
                }
            }
        }
        Compiled::Walker
    }

    // -- builder plumbing -------------------------------------------------

    fn reset(&mut self) {
        self.ops.clear();
        self.labels.clear();
        self.pending = 0;
        self.next_reg = 0;
        self.max_reg = 0;
        self.scopes.clear();
        self.locals_count = 0;
        self.loops.clear();
        self.stmt_end = 0;
        self.stmts.clear();
    }

    fn finish(&mut self, result: u16) -> Compiled {
        self.flush();
        for op in &mut self.ops {
            match op {
                Op::Jmp { target } | Op::JmpIf { target, .. } => {
                    *target = self.labels[*target as usize];
                    debug_assert_ne!(*target, u32::MAX, "jump to unbound label");
                }
                Op::FallbackStmt { brk, cont, ret, .. } => {
                    *brk = self.labels[*brk as usize];
                    *cont = self.labels[*cont as usize];
                    *ret = self.labels[*ret as usize];
                }
                _ => {}
            }
        }
        Compiled::Vm(Program {
            ops: std::mem::take(&mut self.ops),
            regs: self.max_reg,
            result,
            stmts: std::mem::take(&mut self.stmts),
        })
    }

    /// Record one walker-equivalent interpreter step.
    fn burn(&mut self, span: Span) {
        if self.pending == 0 {
            self.pending_span = span;
        }
        self.pending += 1;
    }

    /// Emit the coalesced burns. Called before every label bind, jump,
    /// store, fallible op and fallback, so fuel totals match the
    /// walker on every control path.
    fn flush(&mut self) {
        if self.pending > 0 {
            self.ops.push(Op::Burn {
                n: self.pending,
                span: self.pending_span,
            });
            self.pending = 0;
        }
    }

    fn label(&mut self) -> u32 {
        self.labels.push(u32::MAX);
        (self.labels.len() - 1) as u32
    }

    fn bind(&mut self, l: u32) {
        self.flush();
        self.labels[l as usize] = self.ops.len() as u32;
    }

    fn jmp(&mut self, l: u32) {
        self.flush();
        self.ops.push(Op::Jmp { target: l });
    }

    fn jmp_if(&mut self, cond: u16, l: u32, when_true: bool) {
        self.flush();
        self.ops.push(Op::JmpIf {
            cond,
            target: l,
            when_true,
        });
    }

    fn alloc(&mut self) -> Lower<u16> {
        if self.next_reg >= MAX_REGS {
            return Err(Unsupported);
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        Ok(r)
    }

    fn fallback(&mut self, s: &Stmt) {
        self.flush();
        let idx = self.stmts.len() as u32;
        self.stmts.push(s.clone());
        let (brk, cont) = self
            .loops
            .last()
            .copied()
            .unwrap_or((self.stmt_end, self.stmt_end));
        self.ops.push(Op::FallbackStmt {
            stmt: idx,
            brk,
            cont,
            ret: self.stmt_end,
        });
    }

    // -- types ------------------------------------------------------------

    fn ext_of(&self, ty: TypeId) -> Option<Ext> {
        let t = self.m.table().get(ty);
        if !t.is_integer() {
            return None;
        }
        let size = self.m.table().size_of(ty);
        if size == 0 || size > 4 {
            return None;
        }
        Some(Ext {
            bits: (size * 8) as u8,
            unsigned: t.is_unsigned(),
            is_bool: t == Type::Bool,
        })
    }

    fn int_ty(&mut self) -> TypeId {
        self.m.table_mut().int()
    }

    /// Integer promotion — mirrors `Machine::promote`.
    fn promote_ty(&mut self, ty: TypeId) -> TypeId {
        match self.m.table().get(ty) {
            Type::Bool | Type::Char | Type::UChar | Type::Short | Type::UShort | Type::Enum(_) => {
                self.m.table_mut().int()
            }
            _ => ty,
        }
    }

    /// Usual arithmetic conversions for two integer operand types —
    /// mirrors the integer path of `Machine::usual_arith`.
    fn usual_arith_int(&mut self, a: TypeId, b: TypeId) -> TypeId {
        let pa = self.promote_ty(a);
        let pb = self.promote_ty(b);
        let ta = self.m.table().get(pa);
        let tb = self.m.table().get(pb);
        let sa = self.m.table().size_of(pa);
        let sb = self.m.table().size_of(pb);
        if sa == sb {
            if ta.is_unsigned() || tb.is_unsigned() {
                self.m.table_mut().intern(Type::UInt)
            } else {
                pa
            }
        } else if sa > sb {
            pa
        } else {
            pb
        }
    }

    /// `(common operand type, result type)` of a non-short-circuit
    /// binary operator over two integer operand types.
    fn bin_types(&mut self, op: BinOp, ta: TypeId, tb: TypeId) -> (TypeId, TypeId) {
        let common = self.usual_arith_int(ta, tb);
        let result = if matches!(
            op,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        ) {
            self.int_ty()
        } else {
            common
        };
        (common, result)
    }

    /// Normalize register `r` (type `from`) to type `to`, emitting a
    /// conversion into a fresh register when the types differ.
    fn coerce(&mut self, r: u16, from: TypeId, to: TypeId) -> Lower<u16> {
        if from == to {
            return Ok(r);
        }
        let ext = self.ext_of(to).ok_or(Unsupported)?;
        let dst = self.alloc()?;
        self.ops.push(Op::Conv { dst, src: r, ext });
        Ok(dst)
    }

    fn emit_bin(&mut self, op: BinOp, dst: u16, a: u16, b: u16, ext: Ext, span: Span) {
        let kind = match op {
            BinOp::Add => BinKind::Add,
            BinOp::Sub => BinKind::Sub,
            BinOp::Mul => BinKind::Mul,
            BinOp::Div => BinKind::Div,
            BinOp::Rem => BinKind::Rem,
            BinOp::Shl => BinKind::Shl,
            BinOp::Shr => BinKind::Shr,
            BinOp::Lt => BinKind::Lt,
            BinOp::Gt => BinKind::Gt,
            BinOp::Le => BinKind::Le,
            BinOp::Ge => BinKind::Ge,
            BinOp::Eq => BinKind::Eq,
            BinOp::Ne => BinKind::Ne,
            BinOp::BitAnd => BinKind::And,
            BinOp::BitXor => BinKind::Xor,
            BinOp::BitOr => BinKind::Or,
            BinOp::LogAnd | BinOp::LogOr => unreachable!("short-circuit lowered separately"),
        };
        if matches!(kind, BinKind::Div | BinKind::Rem) {
            // Fallible op: the fuel consumed before a division error
            // must match the walker's.
            self.flush();
        }
        self.ops.push(Op::Bin {
            op: kind,
            dst,
            a,
            b,
            ext,
            span,
        });
    }

    // -- names ------------------------------------------------------------

    /// Resolve an identifier with the walker's exact precedence:
    /// innermost variable binding, then valued signal, then enum
    /// constant (pure signals read as absent and fall through).
    fn resolve(&self, name: &str) -> Option<Res> {
        for scope in self.scopes.iter().rev() {
            for (n, reg, ty) in scope.iter().rev() {
                if n == name {
                    return Some(Res::Local(*reg, *ty));
                }
            }
        }
        if let Some(slot) = self.m.root_lookup(name) {
            return Some(Res::Var(slot, self.m.root_value(slot).ty));
        }
        // Pure signals read as absent through the reader, so the
        // walker falls through to enum constants for them.
        if let Some((i, Some(ty))) = self.sigs.signal(name) {
            return Some(Res::Sig(i, ty));
        }
        if let Some(&c) = self.m.table().enum_consts.get(name) {
            return Some(Res::Enum(c));
        }
        None
    }

    /// Walk a projection chain (`Member`/`Index` nodes) down to its
    /// root identifier. Returns the root and the nodes outermost-first.
    fn collect_chain(e: &Expr) -> Option<(&Ident, Vec<&Expr>)> {
        let mut nodes = Vec::new();
        let mut cur = e;
        loop {
            match &cur.kind {
                ExprKind::Member(base, _) | ExprKind::Index(base, _) => {
                    nodes.push(cur);
                    cur = base;
                }
                ExprKind::Ident(id) => return Some((id, nodes)),
                _ => return None,
            }
        }
    }

    /// Lower the offset computation of a projection chain over a base
    /// of type `base_ty` (nodes outermost-first, walked root-outward).
    /// Index expressions are evaluated in walker order with
    /// bounds-checked `AddScaled` ops. Returns `(offset, leaf type)`.
    fn chain_offset(&mut self, base_ty: TypeId, nodes: &[&Expr]) -> Lower<(Off, TypeId)> {
        let mut cur_ty = base_ty;
        let mut off_static: u32 = 0;
        let mut off_reg: Option<u16> = None;
        for node in nodes.iter().rev() {
            match &node.kind {
                ExprKind::Member(_, field) => {
                    let rid = match self.m.table().get(cur_ty) {
                        Type::Struct(r) | Type::Union(r) => r,
                        _ => return Err(Unsupported),
                    };
                    let f = self
                        .m
                        .table()
                        .record(rid)
                        .field(&field.name)
                        .ok_or(Unsupported)?;
                    let (fo, ft) = (f.offset, f.ty);
                    match off_reg {
                        None => off_static += fo,
                        Some(r) => {
                            if fo != 0 {
                                self.ops.push(Op::AddConst {
                                    dst: r,
                                    k: i64::from(fo),
                                });
                            }
                        }
                    }
                    cur_ty = ft;
                }
                ExprKind::Index(_, idx) => {
                    let Type::Array(elem, n) = self.m.table().get(cur_ty) else {
                        return Err(Unsupported);
                    };
                    let r = match off_reg {
                        Some(r) => r,
                        None => {
                            let r = self.alloc()?;
                            self.ops.push(Op::Const {
                                dst: r,
                                v: i64::from(off_static),
                            });
                            off_reg = Some(r);
                            r
                        }
                    };
                    let save = self.next_reg;
                    let (ri, ti) = self.expr(idx)?;
                    if !self.m.table().get(ti).is_integer() {
                        return Err(Unsupported);
                    }
                    self.flush();
                    self.ops.push(Op::AddScaled {
                        off: r,
                        idx: ri,
                        elem: self.m.table().size_of(elem),
                        len: n,
                        span: node.span,
                    });
                    self.next_reg = save;
                    cur_ty = elem;
                }
                _ => unreachable!("chain nodes are Member/Index"),
            }
        }
        let off = match off_reg {
            Some(r) => Off::Dyn(r),
            None => Off::Static(off_static),
        };
        Ok((off, cur_ty))
    }

    /// Resolve an lvalue expression to a [`Place`] — the static twin of
    /// `Machine::resolve_place` (no burns of its own; index expressions
    /// burn as they are evaluated).
    fn place(&mut self, e: &Expr) -> Lower<Place> {
        if let ExprKind::Ident(id) = &e.kind {
            return match self.resolve(&id.name) {
                Some(Res::Local(reg, ty)) => {
                    let ext = self.ext_of(ty).ok_or(Unsupported)?;
                    Ok(Place {
                        kind: PlaceKind::Local(reg),
                        ty,
                        ext,
                    })
                }
                Some(Res::Var(slot, ty)) => {
                    let ext = self.ext_of(ty).ok_or(Unsupported)?;
                    Ok(Place {
                        kind: PlaceKind::Var {
                            slot: slot as u32,
                            off: Off::Whole,
                        },
                        ty,
                        ext,
                    })
                }
                // Signals/enums are not lvalues; the walker reports
                // "cannot assign to" — the fallback reproduces it.
                _ => Err(Unsupported),
            };
        }
        let (root, nodes) = Self::collect_chain(e).ok_or(Unsupported)?;
        let Some(Res::Var(slot, root_ty)) = self.resolve(&root.name) else {
            return Err(Unsupported);
        };
        let (off, leaf) = self.chain_offset(root_ty, &nodes)?;
        let ext = self.ext_of(leaf).ok_or(Unsupported)?;
        Ok(Place {
            kind: PlaceKind::Var {
                slot: slot as u32,
                off,
            },
            ty: leaf,
            ext,
        })
    }

    /// Read a place into a fresh register.
    fn load_place(&mut self, p: &Place) -> Lower<u16> {
        let dst = self.alloc()?;
        match p.kind {
            // Copy out: the local's home register may be overwritten by
            // a store before the read value is consumed (`x++`).
            PlaceKind::Local(reg) => self.ops.push(Op::Conv {
                dst,
                src: reg,
                ext: p.ext,
            }),
            PlaceKind::Var { slot, off } => self.ops.push(match off {
                Off::Whole => Op::LoadVar {
                    dst,
                    slot,
                    ext: p.ext,
                },
                Off::Static(o) => Op::LoadVarOff {
                    dst,
                    slot,
                    off: o,
                    ext: p.ext,
                },
                Off::Dyn(r) => Op::LoadVarAt {
                    dst,
                    slot,
                    off: r,
                    ext: p.ext,
                },
            }),
        }
        Ok(dst)
    }

    /// Store a (place-typed, normalized) register into a place.
    fn store_place(&mut self, p: &Place, src: u16) {
        self.flush();
        match p.kind {
            PlaceKind::Local(reg) => self.ops.push(Op::Conv {
                dst: reg,
                src,
                ext: p.ext,
            }),
            PlaceKind::Var { slot, off } => self.ops.push(match off {
                Off::Whole => Op::StoreVar {
                    slot,
                    src,
                    ext: p.ext,
                },
                Off::Static(o) => Op::StoreVarOff {
                    slot,
                    off: o,
                    src,
                    ext: p.ext,
                },
                Off::Dyn(r) => Op::StoreVarAt {
                    slot,
                    off: r,
                    src,
                    ext: p.ext,
                },
            }),
        }
    }

    // -- expressions ------------------------------------------------------

    /// Lower an expression; the result register always holds a value
    /// normalized to the returned (integer-scalar) type. Burn
    /// accounting matches `Machine::eval` node for node.
    fn expr(&mut self, e: &Expr) -> Lower<(u16, TypeId)> {
        self.burn(e.span);
        match &e.kind {
            ExprKind::IntLit(v) => {
                let ty = self.int_ty();
                let dst = self.alloc()?;
                self.ops.push(Op::Const {
                    dst,
                    v: Ext::INT.norm(*v),
                });
                Ok((dst, ty))
            }
            ExprKind::CharLit(c) => {
                let ty = self.m.table_mut().intern(Type::Char);
                let ext = self.ext_of(ty).ok_or(Unsupported)?;
                let dst = self.alloc()?;
                self.ops.push(Op::Const {
                    dst,
                    v: ext.norm(i64::from(*c)),
                });
                Ok((dst, ty))
            }
            ExprKind::FloatLit(_) | ExprKind::StrLit(_) => Err(Unsupported),
            ExprKind::Ident(id) => match self.resolve(&id.name) {
                Some(Res::Local(reg, ty)) => {
                    // Copy out of the local's home register: the walker
                    // materializes the value at evaluation time, so a
                    // later-evaluated operand that mutates the local
                    // (`t + t++`) must not be visible to this read.
                    let ext = self.ext_of(ty).ok_or(Unsupported)?;
                    let dst = self.alloc()?;
                    self.ops.push(Op::Conv { dst, src: reg, ext });
                    Ok((dst, ty))
                }
                Some(Res::Var(slot, ty)) => {
                    let ext = self.ext_of(ty).ok_or(Unsupported)?;
                    let dst = self.alloc()?;
                    self.ops.push(Op::LoadVar {
                        dst,
                        slot: slot as u32,
                        ext,
                    });
                    Ok((dst, ty))
                }
                Some(Res::Sig(idx, ty)) => {
                    let ext = self.ext_of(ty).ok_or(Unsupported)?;
                    let dst = self.alloc()?;
                    self.ops.push(Op::LoadSig {
                        dst,
                        sig: idx as u32,
                        ext,
                    });
                    Ok((dst, ty))
                }
                Some(Res::Enum(c)) => {
                    let ty = self.int_ty();
                    let dst = self.alloc()?;
                    self.ops.push(Op::Const {
                        dst,
                        v: Ext::INT.norm(c),
                    });
                    Ok((dst, ty))
                }
                None => Err(Unsupported),
            },
            ExprKind::Unary(op, inner) => self.unary(*op, inner),
            ExprKind::Binary(op, a, b) => self.binary(*op, a, b, e.span),
            ExprKind::Assign(op, lhs, rhs) => {
                let (rv, tv) = self.expr(rhs)?;
                let p = self.place(lhs)?;
                match op.binop() {
                    None => {
                        let conv = self.coerce(rv, tv, p.ty)?;
                        self.store_place(&p, conv);
                        Ok((conv, p.ty))
                    }
                    Some(bop) => {
                        let old = self.load_place(&p)?;
                        let (common, result) = self.bin_types(bop, p.ty, tv);
                        let ca = self.coerce(old, p.ty, common)?;
                        let cb = self.coerce(rv, tv, common)?;
                        let ext = self.ext_of(result).ok_or(Unsupported)?;
                        let comb = self.alloc()?;
                        self.emit_bin(bop, comb, ca, cb, ext, e.span);
                        let conv = self.coerce(comb, result, p.ty)?;
                        self.store_place(&p, conv);
                        Ok((conv, p.ty))
                    }
                }
            }
            ExprKind::PreIncDec(inc, inner) | ExprKind::PostIncDec(inc, inner) => {
                let pre = matches!(e.kind, ExprKind::PreIncDec(_, _));
                let p = self.place(inner)?;
                let old = self.load_place(&p)?;
                let int = self.int_ty();
                let one = self.alloc()?;
                self.ops.push(Op::Const { dst: one, v: 1 });
                let bop = if *inc { BinOp::Add } else { BinOp::Sub };
                let (common, result) = self.bin_types(bop, p.ty, int);
                let ca = self.coerce(old, p.ty, common)?;
                let cb = self.coerce(one, int, common)?;
                let ext = self.ext_of(result).ok_or(Unsupported)?;
                let comb = self.alloc()?;
                self.emit_bin(bop, comb, ca, cb, ext, e.span);
                let newv = self.coerce(comb, result, p.ty)?;
                self.store_place(&p, newv);
                Ok((if pre { newv } else { old }, p.ty))
            }
            ExprKind::Ternary(c, t, f) => {
                let save = self.next_reg;
                let (rc, _) = self.expr(c)?;
                self.next_reg = save;
                let dst = self.alloc()?;
                let l_else = self.label();
                let l_end = self.label();
                self.jmp_if(rc, l_else, false);
                let save2 = self.next_reg;
                let (rt, tt) = self.expr(t)?;
                let text = self.ext_of(tt).ok_or(Unsupported)?;
                self.ops.push(Op::Conv {
                    dst,
                    src: rt,
                    ext: text,
                });
                self.next_reg = save2;
                self.jmp(l_end);
                self.bind(l_else);
                let (rf, tf) = self.expr(f)?;
                if tf != tt {
                    // The walker returns whichever branch evaluated,
                    // typed as-is; a single result register needs one
                    // static type.
                    return Err(Unsupported);
                }
                self.ops.push(Op::Conv {
                    dst,
                    src: rf,
                    ext: text,
                });
                self.next_reg = save2;
                self.bind(l_end);
                Ok((dst, tt))
            }
            ExprKind::Call(_, _) | ExprKind::Arrow(_, _) => Err(Unsupported),
            ExprKind::Index(_, _) | ExprKind::Member(_, _) => self.projection(e),
            ExprKind::Cast(ty_ref, inner) => {
                let (r, tv) = self.expr(inner)?;
                let mut sink = DiagSink::new();
                let to = self
                    .m
                    .table_mut()
                    .resolve(ty_ref, &mut sink)
                    .ok_or(Unsupported)?;
                self.ext_of(to).ok_or(Unsupported)?;
                let conv = self.coerce(r, tv, to)?;
                Ok((conv, to))
            }
            ExprKind::SizeofType(ty_ref) => {
                let mut sink = DiagSink::new();
                let ty = self
                    .m
                    .table_mut()
                    .resolve(ty_ref, &mut sink)
                    .ok_or(Unsupported)?;
                let size = self.m.table().size_of(ty);
                let int = self.int_ty();
                let dst = self.alloc()?;
                self.ops.push(Op::Const {
                    dst,
                    v: i64::from(size),
                });
                Ok((dst, int))
            }
            ExprKind::SizeofExpr(inner) => {
                // The walker evaluates the operand (burns, side
                // effects) and measures the resulting byte length —
                // statically the size of its type.
                let save = self.next_reg;
                let (_, tv) = self.expr(inner)?;
                self.next_reg = save;
                let size = self.m.table().size_of(tv);
                let int = self.int_ty();
                let dst = self.alloc()?;
                self.ops.push(Op::Const {
                    dst,
                    v: i64::from(size),
                });
                Ok((dst, int))
            }
            ExprKind::Comma(a, b) => {
                let save = self.next_reg;
                self.expr(a)?;
                self.next_reg = save;
                self.expr(b)
            }
        }
    }

    fn unary(&mut self, op: UnOp, inner: &Expr) -> Lower<(u16, TypeId)> {
        let (r, ty) = self.expr(inner)?;
        match op {
            UnOp::Plus => Ok((r, ty)),
            UnOp::Neg | UnOp::BitNot => {
                if !self.m.table().get(ty).is_integer() {
                    return Err(Unsupported);
                }
                let pty = self.promote_ty(ty);
                let ext = self.ext_of(pty).ok_or(Unsupported)?;
                let dst = self.alloc()?;
                self.ops.push(Op::Un {
                    op: if matches!(op, UnOp::Neg) {
                        UnKind::Neg
                    } else {
                        UnKind::BitNot
                    },
                    dst,
                    src: r,
                    ext,
                });
                Ok((dst, pty))
            }
            UnOp::Not => {
                let int = self.int_ty();
                let dst = self.alloc()?;
                self.ops.push(Op::Un {
                    op: UnKind::LogNot,
                    dst,
                    src: r,
                    ext: Ext::INT,
                });
                Ok((dst, int))
            }
            UnOp::Deref | UnOp::AddrOf => Err(Unsupported),
        }
    }

    fn binary(&mut self, op: BinOp, a: &Expr, b: &Expr, span: Span) -> Lower<(u16, TypeId)> {
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            // Short-circuit: evaluate `b` only when `a` doesn't decide.
            let int = self.int_ty();
            let save = self.next_reg;
            let (ra, _) = self.expr(a)?;
            self.next_reg = save;
            let dst = self.alloc()?;
            let l_short = self.label();
            let l_end = self.label();
            let on_true = matches!(op, BinOp::LogOr);
            self.jmp_if(ra, l_short, on_true);
            let save2 = self.next_reg;
            let (rb, _) = self.expr(b)?;
            self.jmp_if(rb, l_short, on_true);
            self.next_reg = save2;
            self.ops.push(Op::Const {
                dst,
                v: (!on_true) as i64,
            });
            self.jmp(l_end);
            self.bind(l_short);
            self.ops.push(Op::Const {
                dst,
                v: on_true as i64,
            });
            self.bind(l_end);
            return Ok((dst, int));
        }
        let save = self.next_reg;
        let (ra, ta) = self.expr(a)?;
        let (rb, tb) = self.expr(b)?;
        let (common, result) = self.bin_types(op, ta, tb);
        let ca = self.coerce(ra, ta, common)?;
        let cb = self.coerce(rb, tb, common)?;
        let ext = self.ext_of(result).ok_or(Unsupported)?;
        self.next_reg = save;
        let dst = self.alloc()?;
        self.emit_bin(op, dst, ca, cb, ext, span);
        Ok((dst, result))
    }

    /// Rvalue projection (`x.f[i]` / `sig.f[i]`): the walker reads
    /// variable-rooted chains as places (one burn for the outer node)
    /// and evaluates signal-rooted chains node by node (one burn per
    /// chain node plus the root identifier).
    fn projection(&mut self, e: &Expr) -> Lower<(u16, TypeId)> {
        let (root, nodes) = Self::collect_chain(e).ok_or(Unsupported)?;
        match self.resolve(&root.name) {
            Some(Res::Var(_, _)) => {
                let p = self.place(e)?;
                let dst = self.load_place(&p)?;
                Ok((dst, p.ty))
            }
            Some(Res::Sig(idx, sig_ty)) => {
                // Inner chain nodes + the root identifier each burn
                // one step during the walker's recursive descent (the
                // outermost node burned at `expr` entry).
                for node in &nodes[1..] {
                    self.burn(node.span);
                }
                self.burn(root.span);
                let (off, leaf) = self.chain_offset(sig_ty, &nodes)?;
                let ext = self.ext_of(leaf).ok_or(Unsupported)?;
                let dst = self.alloc()?;
                self.ops.push(match off {
                    Off::Whole | Off::Static(_) => Op::LoadSigOff {
                        dst,
                        sig: idx as u32,
                        off: match off {
                            Off::Static(o) => o,
                            _ => 0,
                        },
                        ext,
                    },
                    Off::Dyn(r) => Op::LoadSigAt {
                        dst,
                        sig: idx as u32,
                        off: r,
                        ext,
                    },
                });
                Ok((dst, leaf))
            }
            // Locals are integer scalars (projection would error), and
            // unknown/pure/enum roots error in the walker too.
            _ => Err(Unsupported),
        }
    }

    // -- statements -------------------------------------------------------

    /// Lower a statement, or roll back and emit a walker fallback.
    /// Propagates instead of falling back when the statement is a bare
    /// declaration (scope placement would diverge) or register locals
    /// are in scope (a walker-executed subtree cannot see them) — the
    /// nearest scope-owning construct falls back wholesale.
    fn stmt_or_fallback(&mut self, s: &Stmt) -> Lower<()> {
        let snap = (
            self.ops.len(),
            self.pending,
            self.pending_span,
            self.next_reg,
            self.stmts.len(),
            self.scopes.last().map_or(0, Vec::len),
        );
        match self.stmt(s) {
            Ok(()) => Ok(()),
            Err(Unsupported) => {
                self.ops.truncate(snap.0);
                self.pending = snap.1;
                self.pending_span = snap.2;
                self.next_reg = snap.3;
                self.stmts.truncate(snap.4);
                if let Some(scope) = self.scopes.last_mut() {
                    let removed = scope.len() - snap.5;
                    scope.truncate(snap.5);
                    self.locals_count -= removed as u32;
                }
                if matches!(s.kind, StmtKind::Decl(_)) || self.locals_count > 0 {
                    return Err(Unsupported);
                }
                self.fallback(s);
                Ok(())
            }
        }
    }

    /// Lower one statement. Burn accounting mirrors `Machine::exec`:
    /// one burn per statement entry plus one per loop iteration.
    fn stmt(&mut self, s: &Stmt) -> Lower<()> {
        self.burn(s.span);
        match &s.kind {
            StmtKind::Expr(None) => Ok(()),
            StmtKind::Expr(Some(e)) => {
                let save = self.next_reg;
                self.expr(e)?;
                self.next_reg = save;
                Ok(())
            }
            StmtKind::Decl(d) => self.decl(d),
            StmtKind::Block(b) => {
                self.scopes.push(Vec::new());
                let reg_save = self.next_reg;
                let mut r = Ok(());
                for st in &b.stmts {
                    if let e @ Err(_) = self.stmt_or_fallback(st) {
                        r = e;
                        break;
                    }
                }
                let popped = self.scopes.pop().expect("pushed above");
                self.locals_count -= popped.len() as u32;
                if r.is_ok() {
                    self.next_reg = reg_save;
                }
                r
            }
            StmtKind::If { cond, then, els } => {
                let save = self.next_reg;
                let (rc, _) = self.expr(cond)?;
                self.next_reg = save;
                let l_end = self.label();
                match els {
                    None => {
                        self.jmp_if(rc, l_end, false);
                        self.stmt_or_fallback(then)?;
                    }
                    Some(e) => {
                        let l_else = self.label();
                        self.jmp_if(rc, l_else, false);
                        self.stmt_or_fallback(then)?;
                        self.jmp(l_end);
                        self.bind(l_else);
                        self.stmt_or_fallback(e)?;
                    }
                }
                self.bind(l_end);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let l_head = self.label();
                let l_end = self.label();
                self.bind(l_head);
                self.burn(s.span); // per-iteration burn
                let save = self.next_reg;
                let (rc, _) = self.expr(cond)?;
                self.next_reg = save;
                self.jmp_if(rc, l_end, false);
                self.loops.push((l_end, l_head));
                let r = self.stmt_or_fallback(body);
                self.loops.pop();
                r?;
                self.jmp(l_head);
                self.bind(l_end);
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let l_head = self.label();
                let l_cont = self.label();
                let l_end = self.label();
                self.bind(l_head);
                self.burn(s.span);
                self.loops.push((l_end, l_cont));
                let r = self.stmt_or_fallback(body);
                self.loops.pop();
                r?;
                self.bind(l_cont);
                let save = self.next_reg;
                let (rc, _) = self.expr(cond)?;
                self.next_reg = save;
                self.jmp_if(rc, l_head, true);
                self.bind(l_end);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(Vec::new());
                let reg_save = self.next_reg;
                let r = self.for_loop(s, init.as_deref(), cond.as_ref(), step.as_ref(), body);
                let popped = self.scopes.pop().expect("pushed above");
                self.locals_count -= popped.len() as u32;
                if r.is_ok() {
                    self.next_reg = reg_save;
                }
                r
            }
            StmtKind::Break => {
                let t = self.loops.last().map_or(self.stmt_end, |l| l.0);
                self.jmp(t);
                Ok(())
            }
            StmtKind::Continue => {
                let t = self.loops.last().map_or(self.stmt_end, |l| l.1);
                self.jmp(t);
                Ok(())
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let save = self.next_reg;
                    self.expr(e)?;
                    self.next_reg = save;
                }
                self.jmp(self.stmt_end);
                Ok(())
            }
            // Switch and the reactive statements fall back (the walker
            // handles switch scoping itself and reports the splitter
            // bug for reactive statements verbatim).
            _ => Err(Unsupported),
        }
    }

    fn for_loop(
        &mut self,
        s: &Stmt,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Stmt,
    ) -> Lower<()> {
        if let Some(i) = init {
            self.stmt_or_fallback(i)?;
        }
        let l_head = self.label();
        let l_step = self.label();
        let l_end = self.label();
        self.bind(l_head);
        self.burn(s.span); // per-iteration burn
        if let Some(c) = cond {
            let save = self.next_reg;
            let (rc, _) = self.expr(c)?;
            self.next_reg = save;
            self.jmp_if(rc, l_end, false);
        }
        self.loops.push((l_end, l_step));
        let r = self.stmt_or_fallback(body);
        self.loops.pop();
        r?;
        self.bind(l_step);
        if let Some(st) = step {
            // The walker evaluates the step expression directly (no
            // statement burn of its own).
            let save = self.next_reg;
            self.expr(st)?;
            self.next_reg = save;
        }
        self.jmp(l_head);
        self.bind(l_end);
        Ok(())
    }

    /// Lower a block-scoped declaration to register locals (evaluation
    /// order matches `Machine::exec_decl`: each initializer sees the
    /// bindings of the declarators before it).
    fn decl(&mut self, d: &VarDecl) -> Lower<()> {
        for decl in &d.decls {
            let mut sink = DiagSink::new();
            let ty = self
                .m
                .table_mut()
                .resolve(&decl.ty, &mut sink)
                .ok_or(Unsupported)?;
            let ext = self.ext_of(ty).ok_or(Unsupported)?;
            let reg = self.alloc()?;
            match &decl.init {
                Some(e) => {
                    let save = self.next_reg;
                    let (r, _) = self.expr(e)?;
                    self.next_reg = save;
                    self.ops.push(Op::Conv {
                        dst: reg,
                        src: r,
                        ext,
                    });
                }
                None => self.ops.push(Op::Const { dst: reg, v: 0 }),
            }
            self.scopes
                .last_mut()
                .ok_or(Unsupported)?
                .push((decl.name.name.clone(), reg, ty));
            self.locals_count += 1;
        }
        Ok(())
    }
}
