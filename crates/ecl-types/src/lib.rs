//! C type system, data layout and data-part interpretation for ECL.
//!
//! The paper's data sub-language *is* ANSI C, so the reproduction needs a
//! faithful-enough C semantic core:
//!
//! * [`types`] — resolved types ([`TypeTable`]), struct/union/enum
//!   definitions, and a MIPS-o32-style layout engine (the paper's
//!   numbers are for a MIPS R3000);
//! * [`consteval`] — constant expression evaluation (array lengths,
//!   enumerator values, `#define`d constants after preprocessing);
//! * [`value`] — the byte-level runtime [`Value`] model. Values are
//!   little-endian byte buffers, which makes the paper's union-based
//!   "two views of a packet" idiom (Figure 1) work exactly as in C;
//! * [`interp`] — an interpreter for the data fragments the ECL splitter
//!   extracts as C functions, plus plain user C functions;
//! * [`lower`] + [`vm`] — the compiled data path: every predicate,
//!   action and valued-emit expression lowers once to a register
//!   bytecode program over dense frame slots and signal indices, with
//!   tree-walker fallback ops for constructs outside the subset.
//!
//! # Example
//!
//! ```
//! use ecl_types::TypeTable;
//! let prog = ecl_syntax::parse_str(
//!     "#define N 4\ntypedef unsigned char byte;\
//!      typedef struct { byte data[N]; } buf_t;").unwrap();
//! let mut sink = ecl_syntax::DiagSink::new();
//! let table = TypeTable::build(&prog, &mut sink);
//! let buf = table.typedef("buf_t").unwrap();
//! assert_eq!(table.size_of(buf), 4);
//! ```

pub mod consteval;
pub mod interp;
pub mod lower;
pub mod types;
pub mod value;
pub mod vm;

pub use ecl_syntax::fxmap::{FxHashMap, FxHasher};
pub use interp::{EvalError, Flow, Machine, SignalReader};
pub use lower::{Lowering, SignalLayout};
pub use types::{Field, Record, Type, TypeId, TypeTable};
pub use value::{Bytes, Value};
pub use vm::{Compiled, Program, ValuesReader};
