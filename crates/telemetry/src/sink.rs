//! Pluggable event sinks: where rendered JSONL lines go.
//!
//! The installed sink is process-global (one telemetry stream per
//! process matches the one-kernel-per-process execution model). Hot
//! paths never touch the sink mutex: [`has_sink`] is a relaxed load of
//! an [`AtomicBool`] mirror, and the mutex is taken only when a line
//! is actually emitted.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A destination for rendered JSONL event lines.
pub trait Sink: Send {
    /// Deliver one rendered JSON object (no trailing newline).
    fn write_line(&mut self, line: &str);
    /// Flush any buffering (called on uninstall and run end).
    fn flush(&mut self) {}
}

static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);
static HAS_SINK: AtomicBool = AtomicBool::new(false);

/// Install a sink, replacing (and flushing) any previous one.
pub fn install_sink(sink: Box<dyn Sink>) {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = slot.as_mut() {
        old.flush();
    }
    *slot = Some(sink);
    HAS_SINK.store(true, Ordering::Relaxed);
}

/// Remove the installed sink (flushed first), if any.
pub fn uninstall_sink() {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = slot.as_mut() {
        old.flush();
    }
    *slot = None;
    HAS_SINK.store(false, Ordering::Relaxed);
}

/// Is a sink installed? One relaxed load — safe on the hot path.
#[inline(always)]
pub fn has_sink() -> bool {
    HAS_SINK.load(Ordering::Relaxed)
}

/// Deliver a rendered line to the installed sink (drops it if the
/// sink was uninstalled since the caller checked).
pub(crate) fn emit_line(line: &str) {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = slot.as_mut() {
        sink.write_line(line);
    }
}

/// Flush the installed sink, if any.
pub fn flush() {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = slot.as_mut() {
        sink.flush();
    }
}

/// A sink that collects lines in memory — for tests and for harnesses
/// that post-process the stream.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink. Clone it before installing to keep a reading
    /// handle (both clones share the buffer).
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// All lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Sink for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
    }
}

/// A sink that writes one line per event to any [`Write`]r (file,
/// stderr). Buffered; flushed on run end and uninstall.
pub struct WriterSink {
    out: Box<dyn Write + Send>,
}

impl WriterSink {
    /// Wrap a writer (buffered internally).
    pub fn new(w: impl Write + Send + 'static) -> WriterSink {
        WriterSink {
            out: Box::new(std::io::BufWriter::new(w)),
        }
    }

    /// A sink writing to stderr.
    pub fn stderr() -> WriterSink {
        WriterSink::new(std::io::stderr())
    }
}

impl Sink for WriterSink {
    fn write_line(&mut self, line: &str) {
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_round_trips_lines() {
        let _g = crate::tests::locked();
        let mem = MemorySink::new();
        install_sink(Box::new(mem.clone()));
        assert!(has_sink());
        emit_line(r#"{"event":"x"}"#);
        uninstall_sink();
        assert!(!has_sink());
        assert_eq!(mem.lines(), vec![r#"{"event":"x"}"#.to_string()]);
    }

    #[test]
    fn writer_sink_writes_newline_terminated_lines() {
        let _g = crate::tests::locked();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = WriterSink::new(Shared(buf.clone()));
        w.write_line("{}");
        w.flush();
        assert_eq!(&*buf.lock().unwrap(), b"{}\n");
    }
}
