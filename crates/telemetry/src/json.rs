//! Minimal JSON rendering: an append-only object builder with correct
//! string escaping. The container has no serde; every emitted telemetry
//! line goes through this builder so escaping lives in exactly one
//! place.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (quotes included) to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An in-progress JSON object: `{"k":v` pairs appended in call order,
/// closed by [`ObjBuilder::finish`].
#[derive(Debug, Default)]
pub struct ObjBuilder {
    buf: String,
    has_fields: bool,
}

impl ObjBuilder {
    /// Start an empty object.
    pub fn new() -> ObjBuilder {
        ObjBuilder {
            buf: String::from("{"),
            has_fields: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.has_fields {
            self.buf.push(',');
        }
        self.has_fields = true;
        push_str_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Append an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a signed integer field.
    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a float field (non-finite values render as null).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.3}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        push_str_escaped(&mut self.buf, v);
        self
    }

    /// Append a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Append a nested object of `(name, u64)` pairs (per-task
    /// breakdowns and similar small maps).
    pub fn obj_u64<'a>(
        &mut self,
        k: &str,
        pairs: impl IntoIterator<Item = (&'a str, u64)>,
    ) -> &mut Self {
        self.key(k);
        self.buf.push('{');
        let mut first = true;
        for (name, v) in pairs {
            if !first {
                self.buf.push(',');
            }
            first = false;
            push_str_escaped(&mut self.buf, name);
            let _ = write!(self.buf, ":{v}");
        }
        self.buf.push('}');
        self
    }

    /// Close the object and return the rendered line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut s = String::new();
        push_str_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn builder_renders_an_object() {
        let mut b = ObjBuilder::new();
        b.str("event", "x")
            .u64("n", 7)
            .i64("d", -2)
            .f64("r", 0.5)
            .bool("ok", true)
            .obj_u64("tasks", [("a", 1u64), ("b", 2)]);
        let line = b.finish();
        assert_eq!(
            line,
            r#"{"event":"x","n":7,"d":-2,"r":0.500,"ok":true,"tasks":{"a":1,"b":2}}"#
        );
        // And it parses back through our own reader.
        crate::schema::parse(&line).unwrap();
    }
}
