//! Run correlation and event emission.
//!
//! A [`Run`] brackets one simulation (design + config) with
//! `run_start`/`run_end` events and stamps a process-unique
//! correlation id that every event emitted in between carries, so a
//! consumer can split an interleaved JSONL stream back into runs.
//!
//! [`event`] is the single emission gate: it returns `None` unless
//! telemetry is enabled *and* a sink is installed, so call sites pay
//! two relaxed loads and nothing else when observability is off.

use crate::json::ObjBuilder;
use crate::schema::SCHEMA_VERSION;
use crate::sink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Monotonic run sequence within the process.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Sequence number of the current run (0 = no run open; events emitted
/// outside a run carry sequence 0).
static CURRENT_RUN: AtomicU64 = AtomicU64::new(0);

/// Fleet session id of the run currently open (0 outside a fleet).
/// Best-effort attribution for emitters that have no session handle
/// of their own (e.g. the degradation ladder in `ecl-faults`).
static CURRENT_SESSION: AtomicU64 = AtomicU64::new(0);

/// The fleet session id stamped by the most recent
/// [`Run::start_session`] (0 outside a fleet).
pub fn current_session() -> u64 {
    CURRENT_SESSION.load(Ordering::Relaxed)
}

/// Process-unique run-id prefix: pid + epoch seconds at first use.
fn run_prefix() -> &'static str {
    static PREFIX: OnceLock<String> = OnceLock::new();
    PREFIX.get_or_init(|| {
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        format!("{:x}-{:x}", std::process::id(), secs)
    })
}

/// The correlation id events are stamped with right now.
pub fn current_run_id() -> String {
    format!("r{}-{}", run_prefix(), CURRENT_RUN.load(Ordering::Relaxed))
}

/// Milliseconds since the UNIX epoch, as an f64 (µs resolution after
/// the builder's 3-decimal rendering).
fn now_ms() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64() * 1e3)
}

/// An event line under construction, preloaded with the schema
/// preamble (`schema`, `ts`, `run_id`, `event`). Dropping without
/// [`EventBuilder::emit`] discards the line.
#[must_use = "call .emit() to deliver the event to the sink"]
pub struct EventBuilder {
    obj: ObjBuilder,
}

/// Open an event line named `name`, or `None` when telemetry is
/// disabled or no sink is installed (the only gate emission sites need
/// to check).
#[inline]
pub fn event(name: &str) -> Option<EventBuilder> {
    if !crate::enabled() || !sink::has_sink() {
        return None;
    }
    let mut obj = ObjBuilder::new();
    obj.u64("schema", SCHEMA_VERSION)
        .f64("ts", now_ms())
        .str("run_id", &current_run_id())
        .str("event", name);
    Some(EventBuilder { obj })
}

impl EventBuilder {
    /// Append an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.obj.u64(k, v);
        self
    }

    /// Append a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.obj.i64(k, v);
        self
    }

    /// Append a float field.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.obj.f64(k, v);
        self
    }

    /// Append a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.obj.str(k, v);
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.obj.bool(k, v);
        self
    }

    /// Append a nested `(name, u64)` map field.
    pub fn obj_u64<'a>(mut self, k: &str, pairs: impl IntoIterator<Item = (&'a str, u64)>) -> Self {
        self.obj.obj_u64(k, pairs);
        self
    }

    /// Render the line and deliver it to the installed sink.
    pub fn emit(self) {
        sink::emit_line(&self.obj.finish());
    }
}

/// Backend-coverage summary a runner can attach to its `run_end`
/// event (extra fields on a known kind are schema-legal): how much of
/// the design executes on the compiled fused backend vs the walker.
///
/// Defined here — not in the runner crates — so telemetry stays at the
/// bottom of the dependency graph; runners convert their own coverage
/// reports into this flat shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCoverage {
    /// Control states fused into compiled rows.
    pub fused_states: u32,
    /// Total control states across all tasks.
    pub states: u32,
    /// Fused transition rows across all tasks.
    pub fused_rows: u32,
    /// Data hooks compiled to VM bytecode.
    pub vm_compiled: u32,
    /// Total data hooks across all tasks.
    pub vm_total: u32,
    /// Sites (states + hooks) demoted to the walker by fault
    /// injection.
    pub demoted_sites: u32,
}

/// One bracketed simulation run. Construct with [`Run::start`] (emits
/// `run_start` and claims the correlation id), close with [`Run::end`]
/// (emits `run_end` with wall time and throughput, then flushes the
/// sink).
pub struct Run {
    design: String,
    config: String,
    t0: Instant,
    seq: u64,
    session: u64,
}

impl Run {
    /// Open a run: bump the run sequence, stamp it current, emit
    /// `run_start` (with session 0 — fleet supervisors use
    /// [`Run::start_session`]).
    pub fn start(design: &str, config: &str) -> Run {
        Run::start_session(design, config, 0)
    }

    /// Open a run attributed to fleet session `session`: the
    /// `run_start`/`run_end` bracket carries the id, and
    /// [`current_session`] reports it until the run closes.
    pub fn start_session(design: &str, config: &str, session: u64) -> Run {
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        CURRENT_RUN.store(seq, Ordering::Relaxed);
        CURRENT_SESSION.store(session, Ordering::Relaxed);
        if let Some(e) = event("run_start") {
            e.str("design", design)
                .str("config", config)
                .u64("session", session)
                .emit();
        }
        Run {
            design: design.to_string(),
            config: config.to_string(),
            t0: Instant::now(),
            seq,
            session,
        }
    }

    /// The run's own correlation id (stable even after another run
    /// starts).
    pub fn id(&self) -> String {
        format!("r{}-{}", run_prefix(), self.seq)
    }

    /// Close the run: emit `run_end` with the instant count, wall
    /// nanoseconds and instants/sec, then flush the sink.
    pub fn end(self, instants: u64) {
        self.end_with_coverage(instants, None)
    }

    /// Close the run like [`Run::end`], additionally stamping the
    /// `run_end` event with backend-coverage fields when `coverage`
    /// is provided.
    pub fn end_with_coverage(self, instants: u64, coverage: Option<&RunCoverage>) {
        let wall_ns = self.t0.elapsed().as_nanos() as u64;
        if let Some(e) = event("run_end") {
            let per_sec = if wall_ns == 0 {
                0.0
            } else {
                instants as f64 / (wall_ns as f64 / 1e9)
            };
            let mut e = e
                .str("design", &self.design)
                .str("config", &self.config)
                .u64("session", self.session)
                .u64("instants", instants)
                .u64("wall_ns", wall_ns)
                .f64("instants_per_sec", per_sec);
            if let Some(c) = coverage {
                e = e
                    .u64("fused_states", c.fused_states as u64)
                    .u64("states", c.states as u64)
                    .u64("fused_rows", c.fused_rows as u64)
                    .u64("vm_compiled", c.vm_compiled as u64)
                    .u64("vm_total", c.vm_total as u64)
                    .u64("demoted_sites", c.demoted_sites as u64);
            }
            e.emit();
        }
        CURRENT_RUN.store(0, Ordering::Relaxed);
        CURRENT_SESSION.store(0, Ordering::Relaxed);
        sink::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{install_sink, uninstall_sink, MemorySink};

    #[test]
    fn event_gate_requires_enabled_and_sink() {
        let _g = crate::tests::locked();
        crate::set_enabled(false);
        uninstall_sink();
        assert!(event("x").is_none());
        crate::set_enabled(true);
        assert!(event("x").is_none(), "no sink installed");
        let mem = MemorySink::new();
        install_sink(Box::new(mem.clone()));
        event("x").unwrap().u64("n", 1).emit();
        uninstall_sink();
        crate::set_enabled(false);
        let lines = mem.lines();
        assert_eq!(lines.len(), 1);
        let obj = crate::schema::parse(&lines[0]).unwrap();
        assert_eq!(obj.get("event").and_then(|v| v.as_str()), Some("x"));
        assert!(obj.get("run_id").is_some());
        assert!(obj.get("ts").is_some());
    }

    #[test]
    fn run_brackets_emit_valid_start_and_end() {
        let _g = crate::tests::locked();
        crate::set_enabled(true);
        let mem = MemorySink::new();
        install_sink(Box::new(mem.clone()));
        let run = Run::start("stack", "vm");
        let id = run.id();
        run.end(10);
        uninstall_sink();
        crate::set_enabled(false);
        let lines = mem.lines();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::schema::validate_line(line).unwrap();
            let obj = crate::schema::parse(line).unwrap();
            assert_eq!(obj.get("run_id").and_then(|v| v.as_str()), Some(&id[..]));
        }
        let end = crate::schema::parse(&lines[1]).unwrap();
        assert_eq!(end.get("event").and_then(|v| v.as_str()), Some("run_end"));
        assert_eq!(end.get("instants").and_then(|v| v.as_u64()), Some(10));
    }
}
