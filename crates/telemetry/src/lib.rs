//! `ecl-telemetry` — structured observability for the reaction hot
//! path.
//!
//! Every execution backend in this repo (s-graph walker, transition
//! tables, bytecode VM) ultimately runs inside the same per-instant
//! loop; this crate gives that loop one shared window: a **lock-free
//! metric registry** of static counter/timer/histogram handles, a
//! **per-run correlation id**, and a **pluggable sink** that emits one
//! JSON object per line (run boundaries, per-N-instant span summaries,
//! monitor verdicts, error instants, `events_lost` warnings).
//!
//! The overhead contract, enforced by `tests/alloc_counter.rs` and the
//! normalized bench gate:
//!
//! * **disabled** (the default): a metric update is one relaxed
//!   atomic load and a predicted branch — no allocation, no store, no
//!   lock. Hot loops may hoist the check once ([`enabled`]) and use
//!   the `raw_*` update paths behind their own local flag.
//! * **enabled**: metric updates are relaxed atomic RMWs on static
//!   cells — still allocation-free and lock-free. Heap traffic happens
//!   only when an *event line* is rendered for the sink (run
//!   boundaries, spans, verdicts — never per instant in steady state
//!   unless a span closes).
//!
//! Nothing here depends on the rest of the workspace: `rtk`, `efsm`,
//! `ecl-types`, `sim` and `ecl-observe` all depend on this crate and
//! bump the well-known handles in [`metrics`].

pub mod json;
pub mod metrics;
pub mod run;
pub mod schema;
pub mod sink;

pub use run::{current_session, event, EventBuilder, Run, RunCoverage};
pub use sink::{install_sink, uninstall_sink, MemorySink, Sink, WriterSink};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Master switch. Off by default; every metric update short-circuits
/// on a relaxed load of this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Span summary cadence in instants (0 = spans off). Read once per
/// `run_events` call by the sim runners.
static SPAN_EVERY: AtomicU64 = AtomicU64::new(1024);

/// Is telemetry collection on? One relaxed load — hot loops may call
/// this once and keep the answer in a register.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Current span cadence (instants per span summary; 0 = off).
pub fn span_every() -> u64 {
    SPAN_EVERY.load(Ordering::Relaxed)
}

/// Set the span cadence (0 disables span summaries).
pub fn set_span_every(n: u64) {
    SPAN_EVERY.store(n, Ordering::Relaxed);
}

/// Configure from the environment — the switchboard for binaries and
/// examples: `ECL_TELEMETRY=1` enables collection,
/// `ECL_TELEMETRY_OUT=<path>` installs a line-buffered file sink
/// (stderr with `ECL_TELEMETRY_OUT=-`), `ECL_TELEMETRY_SPAN=<n>`
/// overrides the span cadence. Returns whether telemetry ended up
/// enabled.
pub fn init_from_env() -> bool {
    let on = std::env::var("ECL_TELEMETRY").is_ok_and(|v| v != "0" && !v.is_empty());
    set_enabled(on);
    if let Ok(n) = std::env::var("ECL_TELEMETRY_SPAN") {
        if let Ok(n) = n.parse::<u64>() {
            set_span_every(n);
        }
    }
    if on {
        match std::env::var("ECL_TELEMETRY_OUT").as_deref() {
            Ok("-") => install_sink(Box::new(WriterSink::stderr())),
            Ok(path) => match std::fs::File::create(path) {
                Ok(f) => install_sink(Box::new(WriterSink::new(f))),
                Err(e) => eprintln!("ecl-telemetry: cannot open {path}: {e}"),
            },
            Err(_) => {}
        }
    }
    on
}

/// A named monotonically increasing counter with a static handle.
///
/// `static PKTS: Counter = Counter::new("sim.packets");` — updates are
/// relaxed `fetch_add`s when enabled and a load+branch when not.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: AtomicU64,
}

impl Counter {
    /// A zeroed counter (const — usable in statics).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` if telemetry is enabled.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.raw_add(n);
        }
    }

    /// Add 1 if telemetry is enabled.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Unconditional add — for loops that hoisted the [`enabled`]
    /// check into a local.
    #[inline(always)]
    pub fn raw_add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Reset to zero (profiling harnesses isolate configs this way).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// Bucket count of [`Histogram`]: one power-of-two bucket per possible
/// `leading_zeros` answer (bucket `i` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero).
pub const HIST_BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram with a static handle.
///
/// Records are relaxed RMWs on fixed atomic cells; quantiles are
/// answered from the bucket upper bounds (within 2x of the true
/// value, which is plenty for "did the per-instant wall time move").
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram (const — usable in statics).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record `v` if telemetry is enabled.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.raw_record(v);
        }
    }

    /// Unconditional record — for loops that hoisted the [`enabled`]
    /// check.
    #[inline]
    pub fn raw_record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Start a timer that records elapsed nanoseconds on drop; `None`
    /// when telemetry is disabled (so the clock is never read).
    #[inline]
    pub fn start_timer(&self) -> Option<TimerGuard<'_>> {
        enabled().then(|| TimerGuard {
            hist: self,
            t0: Instant::now(),
        })
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 {
                    0
                } else {
                    (1u64 << i).wrapping_sub(1)
                };
            }
        }
        self.max()
    }

    /// Reset every cell to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Records elapsed wall time (ns) into a [`Histogram`] when dropped.
pub struct TimerGuard<'h> {
    hist: &'h Histogram,
    t0: Instant,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        self.hist.raw_record(self.t0.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state (ENABLED) is shared across test threads;
    // serialize the tests that flip it.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    pub(crate) fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_counter_does_not_move() {
        let _g = locked();
        set_enabled(false);
        static C: Counter = Counter::new("test.disabled");
        C.add(5);
        C.incr();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn enabled_counter_counts_and_resets() {
        let _g = locked();
        set_enabled(true);
        static C: Counter = Counter::new("test.enabled");
        C.reset();
        C.add(5);
        C.incr();
        assert_eq!(C.get(), 6);
        C.reset();
        assert_eq!(C.get(), 0);
        set_enabled(false);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = locked();
        set_enabled(true);
        static H: Histogram = Histogram::new("test.hist");
        H.reset();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            H.record(v);
        }
        assert_eq!(H.count(), 6);
        assert_eq!(H.sum(), 1106);
        assert_eq!(H.max(), 1000);
        assert_eq!(H.quantile(0.0), 0);
        // p50 lands in the bucket of 2..=3.
        assert_eq!(H.quantile(0.5), 3);
        assert!(H.quantile(1.0) >= 1000);
        H.reset();
        assert_eq!(H.quantile(0.5), 0);
        set_enabled(false);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let _g = locked();
        set_enabled(true);
        static H: Histogram = Histogram::new("test.timer");
        H.reset();
        drop(H.start_timer());
        assert_eq!(H.count(), 1);
        set_enabled(false);
        assert!(H.start_timer().is_none());
    }
}
