//! The versioned event schema and a self-contained JSON reader.
//!
//! Every emitted line is one JSON object carrying the preamble keys
//! `schema` (version number), `ts` (epoch milliseconds), `run_id`
//! (correlation id) and `event` (kind). Each event kind then requires
//! the fields listed in [`REQUIRED_FIELDS`]. [`validate_line`] checks
//! all of it and is what the golden test and the `check_telemetry`
//! binary run over real streams.
//!
//! The reader is a small recursive-descent parser (the container has
//! no serde); it accepts exactly the JSON this crate's builder
//! produces plus ordinary whitespace, which is all a validator needs.

/// Version stamped into every line; bump when the event table or
/// preamble changes shape. v3 added the `session` field to
/// `run_start`/`run_end`/`error` (fleet attribution) and the
/// `fleet_health` kind.
pub const SCHEMA_VERSION: u64 = 3;

/// Required non-preamble fields per event kind. Unknown event kinds
/// are rejected; extra fields on known kinds are allowed (consumers
/// must ignore what they don't know).
pub const REQUIRED_FIELDS: [(&str, &[&str]); 9] = [
    ("run_start", &["design", "config", "session"]),
    ("run_end", &["instants", "wall_ns", "session"]),
    ("span", &["from", "to", "window_ns"]),
    ("verdict", &["monitor", "verdict"]),
    ("error", &["msg", "session"]),
    ("events_lost", &["total"]),
    ("fault_injected", &["site"]),
    ("degraded", &["site"]),
    ("fleet_health", &["sessions", "pressure"]),
];

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64; counters up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parse one JSON value from `s` (the whole string must be consumed).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(cp).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte at offset {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }
}

/// Validate one emitted line against the schema: it must parse as an
/// object, carry the preamble (`schema` == [`SCHEMA_VERSION`], numeric
/// `ts`, string `run_id`, string `event`), name a known event kind,
/// and carry that kind's required fields.
pub fn validate_line(line: &str) -> Result<(), String> {
    let obj = parse(line)?;
    if !matches!(obj, Json::Obj(_)) {
        return Err("line is not a JSON object".to_string());
    }
    match obj.get("schema").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("schema version {v}, expected {SCHEMA_VERSION}")),
        None => return Err("missing numeric 'schema'".to_string()),
    }
    if obj.get("ts").and_then(Json::as_f64).is_none() {
        return Err("missing numeric 'ts'".to_string());
    }
    if obj.get("run_id").and_then(Json::as_str).is_none() {
        return Err("missing string 'run_id'".to_string());
    }
    let event = obj
        .get("event")
        .and_then(Json::as_str)
        .ok_or("missing string 'event'")?;
    let required = REQUIRED_FIELDS
        .iter()
        .find(|(name, _)| *name == event)
        .map(|(_, fields)| *fields)
        .ok_or_else(|| format!("unknown event kind '{event}'"))?;
    for field in required {
        if obj.get(field).is_none() {
            return Err(format!("event '{event}' missing required field '{field}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        match v.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Json::Bool(true));
                assert_eq!(items[1], Json::Null);
                assert_eq!(items[2], Json::Str("x\n".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn validates_preamble_and_required_fields() {
        let good =
            r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"error","msg":"boom","session":0}"#;
        validate_line(good).unwrap();
        // Missing required field (v3: errors must carry a session).
        let bad = r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"error","msg":"boom"}"#;
        assert!(validate_line(bad).is_err());
        // Unknown kind.
        let unk = r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"nope"}"#;
        assert!(validate_line(unk).is_err());
        // Wrong schema version.
        let ver = r#"{"schema":99,"ts":1.0,"run_id":"r1-1","event":"error","msg":"m","session":0}"#;
        assert!(validate_line(ver).is_err());
        // The fault kinds landed with schema v2.
        let fi = r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"fault_injected","site":"drop_external","a":3,"b":7}"#;
        validate_line(fi).unwrap();
        let dg = r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"degraded","site":"vm","kind":"pred","index":0}"#;
        validate_line(dg).unwrap();
        // The fleet-health snapshot kind landed with schema v3.
        let fh = r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"fleet_health","sessions":8,"pressure":1,"running":6,"failed":1}"#;
        validate_line(fh).unwrap();
        // Extra fields on a known kind are fine.
        let extra = r#"{"schema":3,"ts":1.0,"run_id":"r1-1","event":"span","from":0,"to":1024,"window_ns":5,"p50_ns":1}"#;
        validate_line(extra).unwrap();
    }
}
