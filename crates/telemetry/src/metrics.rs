//! The well-known metric registry: every instrumented subsystem bumps
//! a static handle defined here, and profiling harnesses snapshot the
//! whole set by enumeration.
//!
//! Handles live in this crate (not in the crates that bump them) so
//! the registry is closed and enumerable without link-time tricks:
//! [`counters`] and [`histograms`] return every handle, and
//! [`Snapshot`] captures/diffs them for per-config profiling
//! (`gen_profile` resets between configs to attribute counts to one
//! design).

use crate::{Counter, Histogram};

// ---- rtk: the POLIS-style kernel ----------------------------------------

/// Task dispatches (scheduler picks + periodic ticks).
pub static RTK_DISPATCHES: Counter = Counter::new("rtk.dispatches");
/// Events delivered into task mailboxes (external + internal).
pub static RTK_DELIVERIES: Counter = Counter::new("rtk.deliveries");
/// Events overwritten in a 1-place mailbox before consumption.
pub static RTK_EVENTS_LOST: Counter = Counter::new("rtk.events_lost");
/// Cycles charged to application reactions.
pub static RTK_TASK_CYCLES: Counter = Counter::new("rtk.task_cycles");
/// Cycles charged to kernel services.
pub static RTK_RTOS_CYCLES: Counter = Counter::new("rtk.rtos_cycles");
/// Mailbox occupancy (pending events) observed at each dispatch.
pub static RTK_MAILBOX_OCCUPANCY: Histogram = Histogram::new("rtk.mailbox_occupancy");

// ---- sim: the runners ---------------------------------------------------

/// Environment instants driven through `run_events`.
pub static SIM_INSTANTS: Counter = Counter::new("sim.instants");
/// Reaction failures surfaced by `run_events`.
pub static SIM_ERRORS: Counter = Counter::new("sim.errors");
/// Wall time of one environment instant, nanoseconds.
pub static SIM_INSTANT_NS: Histogram = Histogram::new("sim.instant_ns");
/// Instants recorded into a trace ring.
pub static SIM_TRACE_INSTANTS: Counter = Counter::new("sim.trace_instants");
/// Instants evicted from a trace ring (recorded then dropped).
pub static SIM_TRACE_DROPPED: Counter = Counter::new("sim.trace_dropped");
/// Trace-ring occupancy (retained instants) sampled per recorded
/// instant.
pub static SIM_TRACE_OCCUPANCY: Histogram = Histogram::new("sim.trace_occupancy");

// ---- efsm: the compiled-table control engine ----------------------------

/// Reactions stepped through `CompiledEfsm::step_table`.
pub static TABLE_STEPS: Counter = Counter::new("table.steps");
/// Rows compared until the hit, summed over all table-scanned steps
/// (rows-per-hit = this / table-scanned steps).
pub static TABLE_ROWS_SCANNED: Counter = Counter::new("table.rows_scanned");
/// Steps answered by the single-row `Always` fast path.
pub static TABLE_ALWAYS_HITS: Counter = Counter::new("table.always_hits");
/// Steps that fell back to the s-graph walker (row-cap blowouts,
/// fault-demoted states, or `Backend::Walker`).
pub static TABLE_WALK_FALLBACKS: Counter = Counter::new("table.walk_fallbacks");
/// Rows that fired a fused residual program (vs a simple emission
/// slice).
pub static TABLE_FUSED_HITS: Counter = Counter::new("table.fused_hits");
/// Ops executed inside fused residual programs (preds, actions,
/// emits, pads, ends).
pub static TABLE_FUSED_OPS: Counter = Counter::new("table.fused_ops");

// ---- ecl-types: the data-path bytecode VM -------------------------------

/// Compiled-program runs (one per predicate/action/valued-emit hook).
pub static VM_HOOK_RUNS: Counter = Counter::new("vm.hook_runs");
/// `FallbackStmt` executions (statement subtrees the walker ran
/// inside a compiled program).
pub static VM_FALLBACK_STMTS: Counter = Counter::new("vm.fallback_stmts");
/// Hook dispatches that bypassed the VM entirely (walker-compiled
/// hook, a demoted hook, or `Backend::Walker` forced).
pub static VM_WALKER_HOOKS: Counter = Counter::new("vm.walker_hooks");

/// Opcode mnemonics, in the VM's `Op` declaration order.
/// `ecl_types::vm::Op::telemetry_index` indexes [`VM_OPS`] with this
/// ordering; a unit test over there keeps the two in sync.
pub const VM_OP_NAMES: [&str; 21] = [
    "burn",
    "const",
    "conv",
    "add_const",
    "add_scaled",
    "load_var",
    "store_var",
    "load_var_off",
    "store_var_off",
    "load_var_at",
    "store_var_at",
    "load_sig",
    "load_sig_off",
    "load_sig_at",
    "store_sig",
    "emit_copy",
    "bin",
    "un",
    "jmp",
    "jmp_if",
    "fallback_stmt",
];

/// Per-opcode execution counters, indexed by
/// `Op::telemetry_index` (same order as [`VM_OP_NAMES`]).
pub static VM_OPS: [Counter; 21] = [
    Counter::new("vm.op.burn"),
    Counter::new("vm.op.const"),
    Counter::new("vm.op.conv"),
    Counter::new("vm.op.add_const"),
    Counter::new("vm.op.add_scaled"),
    Counter::new("vm.op.load_var"),
    Counter::new("vm.op.store_var"),
    Counter::new("vm.op.load_var_off"),
    Counter::new("vm.op.store_var_off"),
    Counter::new("vm.op.load_var_at"),
    Counter::new("vm.op.store_var_at"),
    Counter::new("vm.op.load_sig"),
    Counter::new("vm.op.load_sig_off"),
    Counter::new("vm.op.load_sig_at"),
    Counter::new("vm.op.store_sig"),
    Counter::new("vm.op.emit_copy"),
    Counter::new("vm.op.bin"),
    Counter::new("vm.op.un"),
    Counter::new("vm.op.jmp"),
    Counter::new("vm.op.jmp_if"),
    Counter::new("vm.op.fallback_stmt"),
];

// ---- ecl-observe: monitors ----------------------------------------------

/// Monitor instants stepped (per monitor per environment instant).
pub static MON_STEPS: Counter = Counter::new("mon.steps");
/// Violations latched (first failure per monitor).
pub static MON_VIOLATIONS: Counter = Counter::new("mon.violations");

// ---- ecl-faults: injection & recovery -----------------------------------

/// Faults injected (all sites: drops, delays, corruption, squeezes,
/// demotions, panics).
pub static FAULTS_INJECTED: Counter = Counter::new("faults.injected");
/// Compiled backends demoted to the walker (VM hooks + table states).
pub static FAULTS_DEGRADED: Counter = Counter::new("faults.degraded");
/// Runs ended by a per-instant watchdog budget (nodes/fuel/wall).
pub static SIM_WATCHDOG_TRIPS: Counter = Counter::new("sim.watchdog_trips");
/// Sessions whose panic was contained at the batch boundary.
pub static SIM_POISONED_SESSIONS: Counter = Counter::new("sim.poisoned_sessions");

// ---- ecl-fleet: session supervision -------------------------------------

/// Checkpoints taken at instant boundaries (initial + periodic).
pub static FLEET_CHECKPOINTS: Counter = Counter::new("fleet.checkpoints");
/// Sessions restored from a checkpoint and replayed after a
/// poisoned/inconclusive outcome.
pub static FLEET_RESTARTS: Counter = Counter::new("fleet.restarts");
/// Sessions refused admission by a full shard queue (the top rung of
/// the pressure ladder).
pub static FLEET_REJECTED: Counter = Counter::new("fleet.rejected");
/// Sessions admitted in a degraded mode (trace/spans shed, monitors
/// sampled).
pub static FLEET_SHED: Counter = Counter::new("fleet.shed");
/// Sessions that exhausted their restart budget and escalated to
/// `Failed`.
pub static FLEET_FAILED: Counter = Counter::new("fleet.failed_sessions");

/// Every registered counter.
pub fn counters() -> Vec<&'static Counter> {
    let mut all: Vec<&'static Counter> = vec![
        &RTK_DISPATCHES,
        &RTK_DELIVERIES,
        &RTK_EVENTS_LOST,
        &RTK_TASK_CYCLES,
        &RTK_RTOS_CYCLES,
        &SIM_INSTANTS,
        &SIM_ERRORS,
        &SIM_TRACE_INSTANTS,
        &SIM_TRACE_DROPPED,
        &TABLE_STEPS,
        &TABLE_ROWS_SCANNED,
        &TABLE_ALWAYS_HITS,
        &TABLE_WALK_FALLBACKS,
        &TABLE_FUSED_HITS,
        &TABLE_FUSED_OPS,
        &VM_HOOK_RUNS,
        &VM_FALLBACK_STMTS,
        &VM_WALKER_HOOKS,
        &MON_STEPS,
        &MON_VIOLATIONS,
        &FAULTS_INJECTED,
        &FAULTS_DEGRADED,
        &SIM_WATCHDOG_TRIPS,
        &SIM_POISONED_SESSIONS,
        &FLEET_CHECKPOINTS,
        &FLEET_RESTARTS,
        &FLEET_REJECTED,
        &FLEET_SHED,
        &FLEET_FAILED,
    ];
    all.extend(VM_OPS.iter());
    all
}

/// Every registered histogram.
pub fn histograms() -> Vec<&'static Histogram> {
    vec![
        &RTK_MAILBOX_OCCUPANCY,
        &SIM_INSTANT_NS,
        &SIM_TRACE_OCCUPANCY,
    ]
}

/// Zero the whole registry (profiling harnesses call this between
/// configs so counts attribute to exactly one run).
pub fn reset_all() {
    for c in counters() {
        c.reset();
    }
    for h in histograms() {
        h.reset();
    }
}

/// A point-in-time capture of every counter (histograms are read live
/// via their handles; only counters need delta arithmetic).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(&'static str, u64)>,
}

/// Capture every counter.
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: counters().iter().map(|c| (c.name(), c.get())).collect(),
    }
}

impl Snapshot {
    /// Value of a named counter (0 when unknown).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Per-counter difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (*n, v.saturating_sub(earlier.get(n))))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = counters().iter().map(|c| c.name()).collect();
        names.extend(histograms().iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(n, names.len(), "duplicate metric name in registry");
    }

    #[test]
    fn vm_op_counters_follow_the_name_table() {
        for (i, name) in VM_OP_NAMES.iter().enumerate() {
            assert_eq!(VM_OPS[i].name(), format!("vm.op.{name}"));
        }
    }

    #[test]
    fn snapshot_diff_isolates_a_window() {
        let _g = crate::tests::locked();
        crate::set_enabled(true);
        reset_all();
        RTK_DISPATCHES.add(3);
        let base = snapshot();
        RTK_DISPATCHES.add(4);
        SIM_INSTANTS.add(2);
        let delta = snapshot().since(&base);
        assert_eq!(delta.get("rtk.dispatches"), 4);
        assert_eq!(delta.get("sim.instants"), 2);
        assert_eq!(delta.get("vm.hook_runs"), 0);
        crate::set_enabled(false);
        reset_all();
    }
}
