//! The evaluated ECL designs, embedded from `designs/` at the repo root.

/// Figures 1–4 of the paper: the protocol-stack fragment.
pub const PROTOCOL_STACK: &str = include_str!("../../../designs/protocol_stack.ecl");

/// The reconstructed voice-mail pager audio buffer controller
/// (the paper's second Table 1 example; see DESIGN.md).
pub const VOICE_PAGER: &str = include_str!("../../../designs/voice_pager.ecl");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_parse() {
        assert!(ecl_syntax::parse_str(PROTOCOL_STACK).is_ok());
        assert!(ecl_syntax::parse_str(VOICE_PAGER).is_ok());
    }

    #[test]
    fn stack_has_four_modules() {
        let p = ecl_syntax::parse_str(PROTOCOL_STACK).unwrap();
        for m in ["assemble", "checkcrc", "prochdr", "toplevel"] {
            assert!(p.module(m).is_some(), "missing module {m}");
        }
    }

    #[test]
    fn pager_has_four_modules() {
        let p = ecl_syntax::parse_str(VOICE_PAGER).unwrap();
        for m in ["producer", "buffer_ctl", "player", "pager"] {
            assert!(p.module(m).is_some(), "missing module {m}");
        }
    }
}
