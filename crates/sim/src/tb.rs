//! Testbenches: stimulus generators for the two evaluated designs.

use rand::{Rng, SeedableRng};

/// Events of one environment instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstantEvents {
    /// Pure signal names present this instant.
    pub pure: Vec<String>,
    /// Valued signals: (name, value) — presence implied.
    pub valued: Vec<(String, i64)>,
}

impl InstantEvents {
    /// All present signal names (pure + valued).
    pub fn names(&self) -> Vec<&str> {
        self.pure
            .iter()
            .map(String::as_str)
            .chain(self.valued.iter().map(|(n, _)| n.as_str()))
            .collect()
    }
}

/// The paper's evaluation workload: a stream of packets fed byte by
/// byte into the protocol stack ("a testbench with 500 packets").
#[derive(Debug, Clone)]
pub struct PacketTb {
    /// Number of packets.
    pub packets: usize,
    /// Every n-th packet carries a corrupted CRC (0 = never).
    pub corrupt_every: usize,
    /// A `reset` pulse before every n-th packet (0 = never).
    pub reset_every: usize,
    /// RNG seed for payload bytes.
    pub seed: u64,
}

impl Default for PacketTb {
    fn default() -> Self {
        PacketTb {
            packets: 500,
            corrupt_every: 5,
            reset_every: 0,
            seed: 1999, // the paper's year
        }
    }
}

/// Packet geometry (mirrors the `#define`s of Figure 1).
pub const HDRSIZE: usize = 6;
/// Payload bytes.
pub const DATASIZE: usize = 56;
/// CRC bytes.
pub const CRCSIZE: usize = 2;
/// Total packet size.
pub const PKTSIZE: usize = HDRSIZE + DATASIZE + CRCSIZE;

/// Build one 64-byte packet. `good_addr` controls whether the header
/// matches `prochdr`'s expected pattern (byte j == j+1); `good_crc`
/// controls CRC validity.
pub fn make_packet(rng: &mut impl Rng, good_addr: bool, good_crc: bool) -> [u8; PKTSIZE] {
    let mut p = [0u8; PKTSIZE];
    for (j, b) in p.iter_mut().enumerate().take(HDRSIZE) {
        *b = if good_addr { (j + 1) as u8 } else { 0xEE };
    }
    for b in p.iter_mut().take(HDRSIZE + DATASIZE).skip(HDRSIZE) {
        *b = rng.gen();
    }
    // CRC per checkcrc: acc = (acc ^ byte) << 1 over header+data,
    // masked to 16 bits and compared little-endian.
    let crc = crc16(&p[..HDRSIZE + DATASIZE]);
    let crc = if good_crc { crc } else { crc ^ 0x0101 };
    p[PKTSIZE - 2] = (crc & 0xFF) as u8;
    p[PKTSIZE - 1] = (crc >> 8) as u8;
    p
}

/// The CRC accumulation of Figure 2, masked to 16 bits.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    for b in bytes {
        acc = ((acc ^ *b as u32) << 1) & 0xFFFF;
    }
    acc as u16
}

impl PacketTb {
    /// Generate the full instant-by-instant event stream: one byte per
    /// instant on `in_byte`, optional `reset` pulses between packets.
    pub fn events(&self) -> Vec<InstantEvents> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.packets * PKTSIZE + 4);
        // One idle instant so all awaits are armed.
        out.push(InstantEvents::default());
        for k in 0..self.packets {
            if self.reset_every != 0 && k > 0 && k % self.reset_every == 0 {
                out.push(InstantEvents {
                    pure: vec!["reset".into()],
                    valued: vec![],
                });
            }
            let corrupt = self.corrupt_every != 0 && (k + 1) % self.corrupt_every == 0;
            let pkt = make_packet(&mut rng, true, !corrupt);
            for b in pkt {
                out.push(InstantEvents {
                    pure: vec![],
                    valued: vec![("in_byte".into(), b as i64)],
                });
            }
            // One gap instant between packets (lets prochdr's par join).
            out.push(InstantEvents::default());
        }
        // Drain instants at the end.
        for _ in 0..(HDRSIZE + 4) {
            out.push(InstantEvents::default());
        }
        out
    }
}

/// Scenario for the voice pager: record `frames` frames, play them
/// back, erase; repeated `rounds` times.
#[derive(Debug, Clone)]
pub struct PagerTb {
    /// Record/playback rounds.
    pub rounds: usize,
    /// Frames recorded per round (4 samples each).
    pub frames: usize,
    /// RNG seed for sample values.
    pub seed: u64,
}

impl Default for PagerTb {
    fn default() -> Self {
        PagerTb {
            rounds: 25,
            frames: 4,
            seed: 7,
        }
    }
}

impl PagerTb {
    /// Generate the event stream.
    pub fn events(&self) -> Vec<InstantEvents> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        out.push(InstantEvents::default());
        for _ in 0..self.rounds {
            // Start recording.
            out.push(InstantEvents {
                pure: vec!["rec_on".into()],
                valued: vec![],
            });
            for _ in 0..self.frames * 4 {
                out.push(InstantEvents {
                    pure: vec![],
                    valued: vec![("sample".into(), rng.gen_range(0..256))],
                });
            }
            out.push(InstantEvents {
                pure: vec!["rec_off".into()],
                valued: vec![],
            });
            // Play back.
            out.push(InstantEvents {
                pure: vec!["play_btn".into()],
                valued: vec![],
            });
            for _ in 0..self.frames * 5 + 4 {
                out.push(InstantEvents {
                    pure: vec!["tick".into()],
                    valued: vec![],
                });
                out.push(InstantEvents::default());
            }
            out.push(InstantEvents {
                pure: vec!["stop_btn".into()],
                valued: vec![],
            });
            out.push(InstantEvents {
                pure: vec!["erase".into()],
                valued: vec![],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_matches_manual_accumulation() {
        let bytes = [1u8, 2, 3];
        let mut acc: u32 = 0;
        for b in bytes {
            acc = ((acc ^ b as u32) << 1) & 0xFFFF;
        }
        assert_eq!(crc16(&bytes), acc as u16);
    }

    #[test]
    fn packets_have_valid_crc_when_asked() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = make_packet(&mut rng, true, true);
        let crc = crc16(&p[..HDRSIZE + DATASIZE]);
        assert_eq!(p[62] as u16 | ((p[63] as u16) << 8), crc);
        let bad = make_packet(&mut rng, true, false);
        let crc2 = crc16(&bad[..HDRSIZE + DATASIZE]);
        assert_ne!(bad[62] as u16 | ((bad[63] as u16) << 8), crc2);
    }

    #[test]
    fn packet_tb_produces_expected_volume() {
        let tb = PacketTb {
            packets: 3,
            corrupt_every: 0,
            reset_every: 0,
            seed: 1,
        };
        let ev = tb.events();
        // 1 idle + 3 × (64 bytes + 1 gap) + drain.
        assert_eq!(ev.len(), 1 + 3 * 65 + HDRSIZE + 4);
        let bytes = ev.iter().filter(|e| !e.valued.is_empty()).count();
        assert_eq!(bytes, 3 * PKTSIZE);
    }

    #[test]
    fn default_is_500_packets() {
        assert_eq!(PacketTb::default().packets, 500);
    }

    #[test]
    fn pager_tb_has_buttons_and_samples() {
        let tb = PagerTb {
            rounds: 1,
            frames: 2,
            seed: 1,
        };
        let ev = tb.events();
        assert!(ev.iter().any(|e| e.pure.contains(&"rec_on".to_string())));
        assert!(ev.iter().any(|e| e.pure.contains(&"play_btn".to_string())));
        assert_eq!(
            ev.iter().filter(|e| !e.valued.is_empty()).count(),
            8 // 2 frames × 4 samples
        );
    }
}
