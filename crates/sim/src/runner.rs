//! Task runners: compiled EFSMs on the RTOS, and an interpreter-backed
//! reference runner for differential testing.
//!
//! Both runners can record a [`Trace`] of every signal occurrence
//! (enable with `enable_trace`), and both implement the [`Runner`]
//! trait, whose `run_events` testbench hook drives a whole
//! [`InstantEvents`] stream and hands the per-instant present-name
//! set to a callback — the attachment point for online monitors
//! (`ecl-observe`).

use crate::tb::InstantEvents;
use crate::trace::{Recorder, Trace};
use codegen::cost::CostParams;
use ecl_core::{Design, Rt};
use efsm::{DataHooks, Efsm, Signal, StateId};
use esterel::compile::CompileOptions;
use rtk::{Kernel, KernelParams, TaskId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Simulation failure.
#[derive(Debug)]
pub struct SimError {
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.msg)
    }
}

impl std::error::Error for SimError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SimError> {
    Err(SimError { msg: msg.into() })
}

/// The common driving surface of both runners.
pub trait Runner {
    /// Set a valued external input (the testbench side of `emit_v`).
    ///
    /// # Errors
    ///
    /// Unknown or pure signal.
    fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError>;

    /// Run one environment instant; returns the emitted names.
    ///
    /// # Errors
    ///
    /// Propagates reaction and data-evaluation failures.
    fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError>;

    /// The next environment instant number.
    fn now(&self) -> u64;

    /// Testbench hook: drive a whole event stream, calling
    /// `on_instant` with the instant number and every present name
    /// (stimuli first, then emissions in delivery order) after each
    /// instant — the attachment point for online monitors.
    ///
    /// # Errors
    ///
    /// Propagates input and reaction failures.
    fn run_events<F>(&mut self, events: &[InstantEvents], mut on_instant: F) -> Result<(), SimError>
    where
        Self: Sized,
        F: FnMut(u64, &[String]),
    {
        for ev in events {
            for (name, v) in &ev.valued {
                self.set_input_i64(name, *v)?;
            }
            let names: Vec<&str> = ev.names();
            let instant = self.now();
            let emitted = self.instant(&names)?;
            let mut present: Vec<String> = names.iter().map(|n| n.to_string()).collect();
            present.extend(emitted);
            on_instant(instant, &present);
        }
        Ok(())
    }
}

/// Trace-friendly scalar view of a signal value: integers read as
/// `i64`, aggregates (packets, frames) trace as presence only.
fn trace_value(rt: &Rt, v: &ecl_types::Value) -> Option<i64> {
    let table = rt.machine().table();
    table.get(v.ty).is_integer().then(|| v.as_i64(table))
}

/// One RTOS task: a compiled design plus its data runtime.
struct Task {
    design: Design,
    efsm: Efsm,
    rt: Rt,
    state: StateId,
    id: TaskId,
}

/// N compiled designs running as RTOS tasks (N = 1 models the paper's
/// synchronous single-task implementation: the whole design is one EFSM
/// and only external I/O passes through the kernel).
pub struct AsyncRunner {
    tasks: Vec<Task>,
    kernel: Kernel,
    cost: CostParams,
    /// Current environment instant number.
    pub instant: u64,
    /// (instant, signal name) emission trace.
    pub trace: Vec<(u64, String)>,
    /// Emission counts by signal name.
    pub counts: HashMap<String, u64>,
    /// Optional full-trace recorder (see [`AsyncRunner::enable_trace`]).
    recorder: Recorder,
}

impl AsyncRunner {
    /// Build a runner from compiled designs (one task each).
    ///
    /// # Errors
    ///
    /// Propagates EFSM compilation and runtime construction failures.
    pub fn new(
        designs: Vec<Design>,
        compile_opts: &CompileOptions,
        cost: CostParams,
        kernel_params: KernelParams,
    ) -> Result<AsyncRunner, SimError> {
        let mut kernel = Kernel::new(kernel_params);
        let mut tasks = Vec::new();
        for (i, design) in designs.into_iter().enumerate() {
            let efsm = design
                .to_efsm(compile_opts)
                .map_err(|e| SimError { msg: e.to_string() })?;
            let rt = design
                .new_rt()
                .map_err(|e| SimError { msg: e.to_string() })?;
            let watches: HashSet<String> =
                efsm.inputs().map(|(_, info)| info.name.clone()).collect();
            let id = kernel.add_task(design.entry.clone(), (10 - i.min(9)) as u8, watches);
            tasks.push(Task {
                state: efsm.init,
                design,
                efsm,
                rt,
                id,
            });
        }
        Ok(AsyncRunner {
            tasks,
            kernel,
            cost,
            instant: 0,
            trace: Vec::new(),
            counts: HashMap::new(),
            recorder: Recorder::default(),
        })
    }

    /// Access the kernel (cycle counters, loss statistics).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Start recording a signal trace retaining the last `capacity`
    /// instants (0 = unbounded).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.recorder.enable(capacity);
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn recorded_trace(&self) -> Option<&Trace> {
        self.recorder.current()
    }

    /// Detach and return the recorded trace (tracing stops).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.recorder.take()
    }

    /// The designs running in the tasks.
    pub fn designs(&self) -> impl Iterator<Item = &Design> {
        self.tasks.iter().map(|t| &t.design)
    }

    /// The compiled machines.
    pub fn machines(&self) -> impl Iterator<Item = &Efsm> {
        self.tasks.iter().map(|t| &t.efsm)
    }

    /// Set the value of a valued *external* input on every task that
    /// reads it (the testbench side of `emit_v`).
    ///
    /// # Errors
    ///
    /// Fails when no task knows the signal.
    pub fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        let mut hit = false;
        for t in &mut self.tasks {
            if t.design.signal(name).is_some() {
                t.rt.set_input_i64(name, v)
                    .map_err(|e| SimError { msg: e.to_string() })?;
                hit = true;
            }
        }
        if !hit {
            return err(format!("no task reads signal `{name}`"));
        }
        self.recorder.note_input(name, v);
        Ok(())
    }

    /// Run one environment instant: post the external `events`, tick
    /// every task once (the paper's footnote: tasks with pending
    /// `await ()` deltas must be rescheduled even without events), then
    /// run event cascades to quiescence. Returns the names emitted
    /// during the instant (in delivery order).
    ///
    /// # Errors
    ///
    /// Propagates data-evaluation errors from any task.
    pub fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        self.recorder.begin(self.instant, events);
        for e in events {
            self.kernel.post_external(e);
        }
        let mut emitted_names = Vec::new();
        // Phase 1: periodic tick — every task reacts once.
        for ti in 0..self.tasks.len() {
            let evset = self.kernel.dispatch(self.tasks[ti].id);
            self.react_task(ti, &evset, &mut emitted_names)?;
        }
        // Phase 2: cascades from internal emissions.
        let mut budget = 100_000u32; // runaway guard
        while let Some((tid, evset)) = self.kernel.schedule() {
            budget = budget.checked_sub(1).ok_or(SimError {
                msg: "asynchronous network livelock (tasks keep waking each other)".into(),
            })?;
            let ti = self
                .tasks
                .iter()
                .position(|t| t.id == tid)
                .expect("scheduled task exists");
            self.react_task(ti, &evset, &mut emitted_names)?;
        }
        self.recorder.end();
        self.instant += 1;
        Ok(emitted_names)
    }

    /// Run one reaction of task `ti` with `evset` as present inputs.
    fn react_task(
        &mut self,
        ti: usize,
        evset: &HashSet<String>,
        emitted_names: &mut Vec<String>,
    ) -> Result<(), SimError> {
        let tid = self.tasks[ti].id;
        // Map names to this task's signal handles.
        let inputs: HashSet<Signal> = evset
            .iter()
            .filter_map(|n| self.tasks[ti].efsm.signal(n))
            .collect();
        let fuel_before = self.tasks[ti].rt.machine().fuel();
        let (r, emitted_with_values) = {
            let t = &mut self.tasks[ti];
            let r = t.efsm.step(t.state, &inputs, &mut t.rt);
            t.state = r.next;
            if let Some(e) = t.rt.take_error() {
                return err(format!("task `{}`: {e}", t.design.entry));
            }
            let ev: Vec<(String, Option<ecl_types::Value>, Option<i64>)> = r
                .emitted
                .iter()
                .map(|s| {
                    let name = t.efsm.signal_info(*s).name.clone();
                    let v = t.rt.signal_value_by_name(&name).cloned();
                    let as_i64 = v.as_ref().and_then(|v| trace_value(&t.rt, v));
                    (name, v, as_i64)
                })
                .collect();
            (r, ev)
        };
        // Cycle charges for the reaction.
        let fuel_after = self.tasks[ti].rt.machine().fuel();
        let ops = fuel_before.saturating_sub(fuel_after);
        let cycles = self.cost.cyc_reaction_base
            + r.nodes_visited as u64 * self.cost.cyc_test
            + ops * self.cost.cyc_per_op
            + r.emitted.len() as u64 * self.cost.cyc_emit;
        self.kernel.charge_task(cycles);
        // Deliver emissions: values first, then events.
        for (name, value, value_i64) in emitted_with_values {
            self.recorder.emit(&name, value_i64);
            // Copy the value into every *other* task that reads it.
            if let Some(v) = &value {
                for rj in 0..self.tasks.len() {
                    if rj == ti {
                        continue;
                    }
                    if self.tasks[rj].design.signal(&name).is_some() {
                        let _ = self.tasks[rj].rt.set_input_value(&name, v.clone());
                        self.kernel
                            .charge_task(v.bytes.len() as u64 * self.cost.cyc_per_value_byte);
                    }
                }
            }
            self.kernel.post_internal(tid, &name);
            *self.counts.entry(name.clone()).or_insert(0) += 1;
            self.trace.push((self.instant, name.clone()));
            emitted_names.push(name);
        }
        Ok(())
    }
}

/// Interpreter-backed single-design runner (reference semantics, used
/// for differential testing against [`AsyncRunner`] with one task).
pub struct InterpRunner<'d> {
    design: &'d Design,
    machine: esterel::Machine<'d>,
    rt: Rt,
    /// Emission counts by name.
    pub counts: HashMap<String, u64>,
    /// Current environment instant number.
    pub instant: u64,
    recorder: Recorder,
}

impl<'d> InterpRunner<'d> {
    /// Build a runner over a design.
    ///
    /// # Errors
    ///
    /// Propagates runtime construction failures.
    pub fn new(design: &'d Design) -> Result<InterpRunner<'d>, SimError> {
        let rt = design
            .new_rt()
            .map_err(|e| SimError { msg: e.to_string() })?;
        Ok(InterpRunner {
            design,
            machine: esterel::Machine::new(design.program()),
            rt,
            counts: HashMap::new(),
            instant: 0,
            recorder: Recorder::default(),
        })
    }

    /// Start recording a signal trace retaining the last `capacity`
    /// instants (0 = unbounded).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.recorder.enable(capacity);
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn recorded_trace(&self) -> Option<&Trace> {
        self.recorder.current()
    }

    /// Detach and return the recorded trace (tracing stops).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.recorder.take()
    }

    /// Set a valued input.
    ///
    /// # Errors
    ///
    /// Unknown/pure signal.
    pub fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        self.rt
            .set_input_i64(name, v)
            .map_err(|e| SimError { msg: e.to_string() })?;
        self.recorder.note_input(name, v);
        Ok(())
    }

    /// Run one instant; returns emitted names.
    ///
    /// # Errors
    ///
    /// Non-constructive programs and data errors.
    pub fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        self.recorder.begin(self.instant, events);
        let present: HashSet<Signal> = events
            .iter()
            .filter_map(|n| self.design.signal(n))
            .collect();
        let r = self
            .machine
            .react(&present, &mut self.rt as &mut dyn DataHooks)
            .map_err(|e| SimError { msg: e.to_string() })?;
        if let Some(e) = self.rt.take_error() {
            return err(e.to_string());
        }
        let mut out = Vec::new();
        for s in &r.emitted {
            let name = self.design.program().signals()[s.0 as usize].name.clone();
            if self.recorder.is_enabled() {
                let traced = self
                    .rt
                    .signal_value_by_name(&name)
                    .and_then(|v| trace_value(&self.rt, v));
                self.recorder.emit(&name, traced);
            }
            *self.counts.entry(name.clone()).or_insert(0) += 1;
            out.push(name);
        }
        self.recorder.end();
        self.instant += 1;
        Ok(out)
    }

    /// Access the runtime (inspect signal values).
    pub fn rt(&self) -> &Rt {
        &self.rt
    }
}

impl Runner for AsyncRunner {
    fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        AsyncRunner::set_input_i64(self, name, v)
    }

    fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        AsyncRunner::instant(self, events)
    }

    fn now(&self) -> u64 {
        self.instant
    }
}

impl<'d> Runner for InterpRunner<'d> {
    fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        InterpRunner::set_input_i64(self, name, v)
    }

    fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        InterpRunner::instant(self, events)
    }

    fn now(&self) -> u64 {
        self.instant
    }
}
impl From<SimError> for ecl_syntax::EclError {
    fn from(e: SimError) -> Self {
        ecl_syntax::EclError::msg(
            ecl_syntax::Stage::Sim,
            e.msg.clone(),
            ecl_syntax::Span::dummy(),
        )
    }
}

impl From<ecl_syntax::EclError> for SimError {
    fn from(e: ecl_syntax::EclError) -> Self {
        SimError { msg: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_core::Compiler;

    const RELAY: &str = "
        module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
        module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
        module top(input pure i, output pure o) {
          signal pure mid;
          par { a(i, mid); b(mid, o); }
        }";

    #[test]
    fn single_task_runner_relays() {
        let d = Compiler::default().compile_str(RELAY, "top").unwrap();
        let mut r = AsyncRunner::new(
            vec![d],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        // Warm-up instant (awaits start), then i.
        r.instant(&[]).unwrap();
        r.instant(&["i"]).unwrap();
        // Synchronous whole-program machine: mid and o fire in the same
        // reaction chain... mid is compiled away as a local; o needs a
        // second i? No: within one EFSM, await(mid) sees the emission
        // only in a later instant (delayed await). Drive more instants.
        let mut got_o = false;
        for _ in 0..4 {
            let e = r.instant(&["i"]).unwrap();
            if e.iter().any(|n| n == "o") {
                got_o = true;
            }
        }
        assert!(got_o, "o should fire; trace: {:?}", r.trace);
        assert!(r.kernel().task_cycles > 0);
        assert!(r.kernel().rtos_cycles > 0);
    }

    #[test]
    fn partitioned_runner_relays_via_mailboxes() {
        let parts = Compiler::default().partition(RELAY, "top").unwrap();
        let mut r = AsyncRunner::new(
            parts,
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        r.instant(&[]).unwrap();
        let mut got_o = false;
        for _ in 0..6 {
            let e = r.instant(&["i"]).unwrap();
            if e.iter().any(|n| n == "o") {
                got_o = true;
            }
        }
        assert!(got_o, "trace: {:?}", r.trace);
        // Internal deliveries happened.
        assert!(r.kernel().deliveries > 0);
    }

    #[test]
    fn interp_runner_matches_async_single_task() {
        use rand::{Rng, SeedableRng};
        let d = Compiler::default().compile_str(RELAY, "top").unwrap();
        let mut interp = InterpRunner::new(&d).unwrap();
        let mut efsm_run = AsyncRunner::new(
            vec![d.clone()],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for step in 0..120 {
            let on = rng.gen_bool(0.5);
            let ev: Vec<&str> = if on { vec!["i"] } else { vec![] };
            let mut a = interp.instant(&ev).unwrap();
            let mut b = efsm_run.instant(&ev).unwrap();
            // Only compare design outputs (locals are reported by the
            // interpreter too; the compiled machine also reports them —
            // both should agree on `o`).
            a.retain(|n| n == "o");
            b.retain(|n| n == "o");
            assert_eq!(a, b, "step {step}");
        }
    }
}
