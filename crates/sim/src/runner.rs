//! Task runners: compiled EFSMs on the RTOS, and an interpreter-backed
//! reference runner for differential testing.
//!
//! Both runners intern every global signal name into a shared
//! [`SigTable`] at construction and then run the whole reaction hot
//! path on dense [`SigId`]s and [`BitSet`] presence sets: kernel
//! mailboxes, task dispatch, emission fan-out and trace recording never
//! touch a string. The [`Runner`] trait exposes that fast path as
//! [`Runner::instant_ids`] (zero heap allocations per instant in steady
//! state) and keeps the original `&str`-based [`Runner::instant`] as a
//! thin compatibility shim on top.
//!
//! Both runners can record a [`Trace`] of every signal occurrence
//! (enable with `enable_trace`), and both implement the [`Runner`]
//! trait, whose `run_events` testbench hook drives a whole
//! [`InstantEvents`] stream and hands the per-instant [`Present`] set
//! to a callback — the attachment point for online monitors
//! (`ecl-observe`).

use crate::tb::InstantEvents;
use crate::trace::{Recorder, Trace};
use codegen::cost::CostParams;
use ecl_core::{Design, Rt};
use ecl_telemetry::metrics as tm;
use efsm::{Backend, BitSet, CompiledEfsm, DataHooks, Efsm, SigId, SigTable, Signal, StateId};
use esterel::compile::CompileOptions;
use rtk::{Kernel, KernelParams, TaskId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// What class of failure ended a simulation — recovery layers map
/// these onto verdicts: [`SimErrorKind::is_inconclusive`] kinds end a
/// monitored run as `Inconclusive` (the run was cut short, nothing
/// was proven), the rest stay definite errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimErrorKind {
    /// A reaction or data-path evaluation failure — definite.
    Eval,
    /// The phase-2 cascade budget ran out (tasks kept waking each
    /// other).
    Livelock,
    /// A per-instant [`WatchdogBudget`] was exceeded.
    Watchdog,
    /// The runner state was torn by a panic in an earlier instant —
    /// the session must not be driven further.
    Poisoned,
}

impl SimErrorKind {
    /// Stable lowercase name (telemetry `error` lines carry it).
    pub fn as_str(self) -> &'static str {
        match self {
            SimErrorKind::Eval => "eval",
            SimErrorKind::Livelock => "livelock",
            SimErrorKind::Watchdog => "watchdog",
            SimErrorKind::Poisoned => "poisoned",
        }
    }

    /// Should a monitored run conclude `Inconclusive` rather than
    /// propagate an error? True for budget trips: the run was ended
    /// deliberately, not because the design misbehaved.
    pub fn is_inconclusive(self) -> bool {
        matches!(self, SimErrorKind::Livelock | SimErrorKind::Watchdog)
    }
}

/// Simulation failure.
#[derive(Debug)]
pub struct SimError {
    /// Explanation.
    pub msg: String,
    /// Failure class (see [`SimErrorKind`]).
    pub kind: SimErrorKind,
}

impl SimError {
    /// A definite evaluation failure.
    pub fn eval(msg: impl Into<String>) -> SimError {
        SimError {
            msg: msg.into(),
            kind: SimErrorKind::Eval,
        }
    }

    /// A cascade-budget (livelock) failure.
    pub fn livelock(msg: impl Into<String>) -> SimError {
        SimError {
            msg: msg.into(),
            kind: SimErrorKind::Livelock,
        }
    }

    /// A watchdog-budget trip.
    pub fn watchdog(msg: impl Into<String>) -> SimError {
        SimError {
            msg: msg.into(),
            kind: SimErrorKind::Watchdog,
        }
    }

    /// A poisoned-runner rejection.
    pub fn poisoned(msg: impl Into<String>) -> SimError {
        SimError {
            msg: msg.into(),
            kind: SimErrorKind::Poisoned,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.msg)
    }
}

impl std::error::Error for SimError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SimError> {
    Err(SimError::eval(msg))
}

/// Per-instant resource budgets — the watchdog that turns a hung or
/// runaway run into a definite [`SimErrorKind::Watchdog`] stop (which
/// monitored runs report as an `Inconclusive` verdict) instead of an
/// endless sit. All limits apply to a *single* environment instant;
/// `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogBudget {
    /// Max s-graph nodes visited per instant (on the interpreter
    /// runner: constructive passes — its reaction reports no node
    /// counts). Deterministic across backends.
    pub max_nodes: Option<u64>,
    /// Max data-path fuel burned per instant. Deterministic across
    /// backends (fuel charges are bit-identical by the VM contract).
    pub max_fuel: Option<u64>,
    /// Max wall-clock nanoseconds per instant. Inherently
    /// nondeterministic — use for hang protection, not for
    /// reproducible chaos plans.
    pub max_wall_ns: Option<u64>,
}

/// One instant's present set: interned ids plus the table to resolve
/// them — what [`Runner::run_events`] hands its callback. Names are
/// materialized only on demand (the lazy name iterator), so monitors
/// that work on ids never pay for strings.
#[derive(Debug, Clone, Copy)]
pub struct Present<'a> {
    table: &'a SigTable,
    set: &'a BitSet,
}

impl<'a> Present<'a> {
    /// Wrap a presence set.
    pub fn new(table: &'a SigTable, set: &'a BitSet) -> Present<'a> {
        Present { table, set }
    }

    /// The signal table the ids resolve against.
    pub fn table(&self) -> &'a SigTable {
        self.table
    }

    /// The present ids.
    pub fn ids(&self) -> &'a BitSet {
        self.set
    }

    /// Is `sig` present?
    pub fn contains_id(&self, sig: SigId) -> bool {
        self.set.contains(sig.bit())
    }

    /// Is the (exact) global name present?
    pub fn contains(&self, name: &str) -> bool {
        self.table
            .lookup(name)
            .is_some_and(|id| self.set.contains(id.bit()))
    }

    /// Lazy iterator over the present names, in id order.
    pub fn names(&self) -> impl Iterator<Item = &'a str> + 'a {
        self.table.names_of(self.set)
    }

    /// Materialize the present names (compatibility helper).
    pub fn to_names(&self) -> Vec<String> {
        self.names().map(str::to_string).collect()
    }
}

/// Compiled-backend coverage of one task: how much of its control
/// and data path executes fused/compiled rather than on the walker,
/// and how much fault injection has demoted back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCoverage {
    /// Task entry-module name.
    pub task: String,
    /// Control states in the task's EFSM.
    pub states: u32,
    /// States fused into compiled rows (the rest walk).
    pub fused_states: u32,
    /// Fused transition rows.
    pub fused_rows: u32,
    /// Data hooks compiled to VM bytecode.
    pub vm_compiled: u32,
    /// Total data hooks (predicates + actions + valued emits).
    pub vm_total: u32,
    /// States demoted to the walker by the fault-injection ladder.
    pub demoted_states: u32,
    /// Data hooks demoted to the walker by the fault-injection ladder.
    pub demoted_hooks: u32,
}

/// Compiled-backend coverage over a whole runner, per task — the one
/// schema that replaced the `vm_coverage()`/`tabled_states()` tuple
/// pair. Consumed by `gen_bench`, `gen_profile`, and (via
/// [`CoverageReport::telemetry`]) the `run_end` telemetry event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// One entry per task, in task order.
    pub tasks: Vec<TaskCoverage>,
}

impl CoverageReport {
    /// Total control states.
    pub fn states(&self) -> u32 {
        self.tasks.iter().map(|t| t.states).sum()
    }

    /// Total fused states.
    pub fn fused_states(&self) -> u32 {
        self.tasks.iter().map(|t| t.fused_states).sum()
    }

    /// Total fused rows.
    pub fn fused_rows(&self) -> u32 {
        self.tasks.iter().map(|t| t.fused_rows).sum()
    }

    /// Total VM-compiled data hooks.
    pub fn vm_compiled(&self) -> u32 {
        self.tasks.iter().map(|t| t.vm_compiled).sum()
    }

    /// Total data hooks.
    pub fn vm_total(&self) -> u32 {
        self.tasks.iter().map(|t| t.vm_total).sum()
    }

    /// Total walker-demoted sites (states + hooks).
    pub fn demoted_sites(&self) -> u32 {
        self.tasks
            .iter()
            .map(|t| t.demoted_states + t.demoted_hooks)
            .sum()
    }

    /// Does every state and every data hook execute compiled — i.e.
    /// under [`Backend::Compiled`] no s-graph walker step can occur
    /// inside an instant (absent fault demotions)?
    pub fn fully_fused(&self) -> bool {
        self.fused_states() == self.states() && self.vm_compiled() == self.vm_total()
    }

    /// The flat shape the telemetry `run_end` event carries.
    pub fn telemetry(&self) -> ecl_telemetry::RunCoverage {
        ecl_telemetry::RunCoverage {
            fused_states: self.fused_states(),
            states: self.states(),
            fused_rows: self.fused_rows(),
            vm_compiled: self.vm_compiled(),
            vm_total: self.vm_total(),
            demoted_sites: self.demoted_sites(),
        }
    }
}

/// The common driving surface of both runners.
///
/// Trace recording and emission accounting are implemented here once,
/// as default methods over the two slot accessors ([`Runner::trace_slot`]
/// / [`Runner::counts_slot`]) — runners only expose their [`Recorder`]
/// and count array.
pub trait Runner {
    /// Choose the execution backend — [`Backend::Compiled`] (the
    /// default) runs fused per-task programs (mask-scan rows falling
    /// through into bytecode), [`Backend::Walker`] forces the
    /// reference tree interpreter for control and data alike. The two
    /// are observationally identical (differential-tested); the switch
    /// exists for measurement, bisection and differential gating.
    fn set_backend(&mut self, backend: Backend);

    /// The active execution backend.
    fn backend(&self) -> Backend;

    /// Compiled-backend coverage, per task.
    fn coverage(&self) -> CoverageReport;

    /// The design-wide signal interner (built once at construction).
    fn sig_table(&self) -> &Arc<SigTable>;

    /// The runner's trace recorder.
    fn trace_slot(&self) -> &Recorder;

    /// The runner's trace recorder, mutably.
    fn trace_slot_mut(&mut self) -> &mut Recorder;

    /// Emission counts indexed by interned [`SigId`] bit.
    fn counts_slot(&self) -> &[u64];

    /// Start recording a signal trace retaining the last `capacity`
    /// instants (0 = unbounded).
    fn enable_trace(&mut self, capacity: usize) {
        self.trace_slot_mut().enable(capacity);
    }

    /// The recorded trace so far, if tracing is enabled.
    fn recorded_trace(&self) -> Option<&Trace> {
        self.trace_slot().current()
    }

    /// Detach and return the recorded trace (tracing stops).
    fn take_trace(&mut self) -> Option<Trace> {
        self.trace_slot_mut().take()
    }

    /// Emission count of one signal.
    fn count_of(&self, name: &str) -> u64 {
        self.sig_table()
            .lookup(name)
            .map_or(0, |id| self.counts_slot()[id.bit()])
    }

    /// Emission counts by signal name (signals emitted at least once).
    fn counts(&self) -> HashMap<String, u64> {
        let table = self.sig_table();
        self.counts_slot()
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (table.name(SigId(i as u32)).to_string(), *n))
            .collect()
    }

    /// Set a valued external input by interned id (the fast path of
    /// [`Runner::set_input_i64`]).
    ///
    /// # Errors
    ///
    /// Unknown or pure signal.
    fn set_input_i64_id(&mut self, sig: SigId, v: i64) -> Result<(), SimError>;

    /// Set a valued external input (the testbench side of `emit_v`).
    ///
    /// # Errors
    ///
    /// Unknown or pure signal.
    fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        let Some(id) = self.sig_table().lookup(name) else {
            return err(format!("no task reads signal `{name}`"));
        };
        self.set_input_i64_id(id, v)
    }

    /// Run one environment instant with the interned `events` present.
    /// The emitted ids are written into `out` (cleared first). This is
    /// the zero-allocation fast path: in steady state neither runner
    /// touches the heap here (scratch buffers are reused across
    /// instants).
    ///
    /// # Errors
    ///
    /// Propagates reaction and data-evaluation failures.
    fn instant_ids(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError>;

    /// Run one environment instant; returns the emitted names in
    /// delivery order. Compatibility shim over [`Runner::instant_ids`]
    /// (allocates; unknown event names are ignored).
    ///
    /// # Errors
    ///
    /// Propagates reaction and data-evaluation failures.
    fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError>;

    /// The next environment instant number.
    fn now(&self) -> u64;

    /// The fleet session id telemetry `error` lines carry (0 for
    /// runners outside a fleet — see [`AsyncRunner::set_session`]).
    fn session_id(&self) -> u64 {
        0
    }

    /// Flush loss accounting to telemetry (an `events_lost` event per
    /// task with a non-zero count). A no-op for runners without a
    /// kernel; [`AsyncRunner`] reports mailbox-overwrite losses.
    /// Called from the `run_events` brackets on both the success and
    /// the error path so losses never silently vanish from a stream.
    fn emit_losses(&self) {}

    /// Testbench hook: drive a whole event stream, calling
    /// `on_instant` with the instant number and the [`Present`] set
    /// (stimuli plus emissions) after each instant — the attachment
    /// point for online monitors. Runs entirely on the id fast path;
    /// the only per-instant heap traffic is whatever the callback does.
    ///
    /// # Errors
    ///
    /// Propagates input and reaction failures.
    fn run_events<F>(&mut self, events: &[InstantEvents], mut on_instant: F) -> Result<(), SimError>
    where
        Self: Sized,
        F: FnMut(u64, Present<'_>),
    {
        let mut ev_bits = BitSet::new();
        let mut present = BitSet::new();
        // Telemetry state, hoisted once per call: the clock is read
        // only when collection is on, and span bookkeeping is all
        // locals (no allocation until a span line is rendered).
        let tel = ecl_telemetry::enabled();
        let span_every = if tel { ecl_telemetry::span_every() } else { 0 };
        let mut span_from = self.now();
        let mut span_t0 = (span_every > 0).then(std::time::Instant::now);
        let mut in_window = 0u64;
        for ev in events {
            ev_bits.clear();
            for (name, v) in &ev.valued {
                let Some(id) = self.sig_table().lookup(name) else {
                    return err(format!("no task reads signal `{name}`"));
                };
                self.set_input_i64_id(id, *v)?;
                ev_bits.insert(id.bit());
            }
            for name in ev.pure.iter() {
                if let Some(id) = self.sig_table().lookup(name) {
                    ev_bits.insert(id.bit());
                }
            }
            let instant = self.now();
            let r = if tel {
                let t0 = std::time::Instant::now();
                let r = self.instant_ids(&ev_bits, &mut present);
                tm::SIM_INSTANT_NS.raw_record(t0.elapsed().as_nanos() as u64);
                tm::SIM_INSTANTS.raw_add(1);
                r
            } else {
                self.instant_ids(&ev_bits, &mut present)
            };
            if let Err(e) = r {
                tm::SIM_ERRORS.add(1);
                if let Some(ev) = ecl_telemetry::event("error") {
                    ev.u64("instant", instant)
                        .u64("session", self.session_id())
                        .str("kind", e.kind.as_str())
                        .str("msg", &e.msg)
                        .emit();
                }
                self.emit_losses();
                return Err(e);
            }
            present.union_with(&ev_bits);
            on_instant(instant, Present::new(self.sig_table(), &present));
            if span_every > 0 {
                in_window += 1;
                if in_window >= span_every {
                    let window_ns = span_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    if let Some(e) = ecl_telemetry::event("span") {
                        e.u64("from", span_from)
                            .u64("to", instant + 1)
                            .u64("window_ns", window_ns)
                            .u64("p50_ns", tm::SIM_INSTANT_NS.quantile(0.5))
                            .u64("p99_ns", tm::SIM_INSTANT_NS.quantile(0.99))
                            .emit();
                    }
                    span_from = instant + 1;
                    span_t0 = Some(std::time::Instant::now());
                    in_window = 0;
                }
            }
        }
        self.emit_losses();
        Ok(())
    }

    /// [`Runner::run_events`] with the legacy name-vector callback
    /// (kept for comparison benchmarks and external callers; clones
    /// every present name per instant).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Runner::run_events`].
    fn run_events_names<F>(
        &mut self,
        events: &[InstantEvents],
        mut on_instant: F,
    ) -> Result<(), SimError>
    where
        Self: Sized,
        F: FnMut(u64, &[String]),
    {
        for ev in events {
            for (name, v) in &ev.valued {
                self.set_input_i64(name, *v)?;
            }
            let names: Vec<&str> = ev.names();
            let instant = self.now();
            let emitted = self.instant(&names)?;
            let mut present: Vec<String> = names.iter().map(|n| n.to_string()).collect();
            present.extend(emitted);
            on_instant(instant, &present);
        }
        self.emit_losses();
        Ok(())
    }
}

/// Trace-friendly scalar view of a signal value: integers read as
/// `i64`, aggregates (packets, frames) trace as presence only.
fn trace_value(rt: &Rt, v: &ecl_types::Value) -> Option<i64> {
    let table = rt.machine().table();
    table.get(v.ty).is_integer().then(|| v.as_i64(table))
}

/// Shared watchdog verdict for an instant that just completed: trips
/// the first exceeded budget as a [`SimErrorKind::Watchdog`] error
/// (bumping `sim.watchdog_trips`), otherwise `Ok(())`.
fn check_watchdog(
    wd: Option<WatchdogBudget>,
    instant: u64,
    nodes: u64,
    fuel: u64,
    wall_t0: Option<std::time::Instant>,
) -> Result<(), SimError> {
    let Some(w) = wd else { return Ok(()) };
    let trip = |what: &str, spent: u64, max: u64| {
        tm::SIM_WATCHDOG_TRIPS.incr();
        Err(SimError::watchdog(format!(
            "instant {instant} exceeded the {what} budget ({spent} > {max})"
        )))
    };
    if let Some(max) = w.max_nodes {
        if nodes > max {
            return trip("node", nodes, max);
        }
    }
    if let Some(max) = w.max_fuel {
        if fuel > max {
            return trip("fuel", fuel, max);
        }
    }
    if let (Some(max), Some(t0)) = (w.max_wall_ns, wall_t0) {
        let elapsed = t0.elapsed().as_nanos() as u64;
        if elapsed > max {
            return trip("wall-time", elapsed, max);
        }
    }
    Ok(())
}

/// The immutable compilation product of one task: the design, its
/// EFSM, the fused compiled program, the local ↔ global signal wiring
/// and a prototype runtime. Built once by [`SharedProgram::compile`]
/// and `Arc`-shared by every runner instantiated from it — a fleet of
/// N sessions pays for compilation exactly once.
pub struct TaskProgram {
    design: Design,
    efsm: Efsm,
    /// Fused compiled backend of `efsm`: every state — pure or mixed —
    /// as mask-scan rows falling through into residual bytecode (only
    /// row-cap blowouts keep the s-graph walker).
    table: CompiledEfsm,
    /// Prototype runtime, cloned per session (its compiled data
    /// programs are themselves `Arc`-shared inside [`Rt`]).
    proto_rt: Rt,
    /// Local signal index → interned global id.
    to_global: Vec<SigId>,
    /// Global id → local signal (None when this task doesn't know it).
    from_global: Vec<Option<Signal>>,
    /// Local signal index → carries a value?
    valued: Vec<bool>,
    /// Global bits of the task's external inputs (kernel watch-set).
    watches: BitSet,
    /// Kernel priority (program order: earlier designs run higher).
    priority: u8,
}

/// One design set compiled once, instantiable many times: the shared,
/// immutable half of a session fleet. [`AsyncRunner::from_shared`]
/// stamps out an independent runner (own kernel, runtimes, trace,
/// counters) over these `Arc`'d programs without recompiling.
#[derive(Clone)]
pub struct SharedProgram {
    tasks: Vec<Arc<TaskProgram>>,
    sig_table: Arc<SigTable>,
}

impl SharedProgram {
    /// Compile `designs` (one task each) into a shareable program set.
    ///
    /// # Errors
    ///
    /// Propagates EFSM compilation and runtime construction failures.
    pub fn compile(
        designs: Vec<Design>,
        compile_opts: &CompileOptions,
    ) -> Result<SharedProgram, SimError> {
        // Pass 1: compile everything and intern the global namespace.
        let mut table = SigTable::new();
        let mut compiled = Vec::new();
        for design in designs {
            let efsm = design
                .to_efsm(compile_opts)
                .map_err(|e| SimError::eval(e.to_string()))?;
            for info in &efsm.signals {
                table.intern(&info.name);
            }
            let rt = design.new_rt().map_err(|e| SimError::eval(e.to_string()))?;
            compiled.push((design, efsm, rt));
        }
        // Pass 2: wire each task through the now-complete table.
        let mut tasks = Vec::new();
        for (i, (design, efsm, proto_rt)) in compiled.into_iter().enumerate() {
            let to_global: Vec<SigId> = efsm
                .signals
                .iter()
                .map(|info| table.lookup(&info.name).expect("interned in pass 1"))
                .collect();
            let mut from_global: Vec<Option<Signal>> = vec![None; table.len()];
            for (local, gid) in to_global.iter().enumerate() {
                from_global[gid.bit()] = Some(Signal(local as u32));
            }
            let valued: Vec<bool> = efsm.signals.iter().map(|info| info.valued).collect();
            let watches: BitSet = efsm
                .inputs()
                .map(|(s, _)| to_global[s.0 as usize].bit())
                .collect();
            let table_c = CompiledEfsm::compile(&efsm);
            tasks.push(Arc::new(TaskProgram {
                design,
                efsm,
                table: table_c,
                proto_rt,
                to_global,
                from_global,
                valued,
                watches,
                priority: (10 - i.min(9)) as u8,
            }));
        }
        Ok(SharedProgram {
            tasks,
            sig_table: Arc::new(table),
        })
    }

    /// The design-wide signal interner.
    pub fn sig_table(&self) -> &Arc<SigTable> {
        &self.sig_table
    }

    /// Number of tasks in the program set.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The designs, in task order.
    pub fn designs(&self) -> impl Iterator<Item = &Design> {
        self.tasks.iter().map(|t| &t.design)
    }
}

/// One RTOS task: an `Arc`-shared compiled program plus this
/// session's private mutable state (runtime, control state,
/// degradation latches).
struct Task {
    prog: Arc<TaskProgram>,
    rt: Rt,
    state: StateId,
    id: TaskId,
    /// States whose compiled table row was demoted to the s-graph
    /// walker by the graceful-degradation ladder (latched; empty
    /// unless a fault plan demoted something).
    demoted_states: BitSet,
    /// Fuel withheld from this task by the current instant's
    /// starvation squeeze, restored when the instant ends.
    fuel_credit: u64,
}

/// N compiled designs running as RTOS tasks (N = 1 models the paper's
/// synchronous single-task implementation: the whole design is one EFSM
/// and only external I/O passes through the kernel).
pub struct AsyncRunner {
    tasks: Vec<Task>,
    kernel: Kernel,
    cost: CostParams,
    table: Arc<SigTable>,
    /// Execution backend: [`Backend::Compiled`] (default) drives every
    /// state through its fused program (mask-scan rows + residual
    /// bytecode, data hooks on the VM); [`Backend::Walker`] forces the
    /// s-graph walker and the tree-walking data interpreter everywhere
    /// — the two are observationally identical (differential-tested),
    /// the toggle exists for benchmarking and bisection.
    backend: Backend,
    /// Current environment instant number.
    pub instant: u64,
    /// Emission counts by interned id.
    counts: Vec<u64>,
    /// Optional full-trace recorder (see [`AsyncRunner::enable_trace`]).
    recorder: Recorder,
    /// Per-instant resource budgets (None = no watchdog).
    watchdog: Option<WatchdogBudget>,
    /// An instant is currently executing. Left latched when a panic
    /// unwinds through `instant_ids` — the poisoned-state detector:
    /// further instants are refused with [`SimErrorKind::Poisoned`].
    in_instant: bool,
    /// Fleet session id carried on telemetry `error` lines (0 outside
    /// a fleet).
    session: u64,
    /// Externally-delayed events: `(due instant, signal bit)`. Empty
    /// unless a fault plan delays stimuli.
    delayed: Vec<(u64, usize)>,
    // Reusable per-instant scratch (what makes `instant_ids`
    // allocation-free in steady state).
    evset_scratch: BitSet,
    local_scratch: BitSet,
    emit_scratch: Vec<Signal>,
    order_scratch: Vec<SigId>,
    /// Effective-stimulus scratch for fault-adjusted instants (only
    /// touched when a plan is installed).
    fault_scratch: BitSet,
}

impl AsyncRunner {
    /// Build a runner from compiled designs (one task each). Compiles
    /// a private [`SharedProgram`] — fleets that stamp out many
    /// sessions over one design set should compile once and use
    /// [`AsyncRunner::from_shared`] instead.
    ///
    /// # Errors
    ///
    /// Propagates EFSM compilation and runtime construction failures.
    pub fn new(
        designs: Vec<Design>,
        compile_opts: &CompileOptions,
        cost: CostParams,
        kernel_params: KernelParams,
    ) -> Result<AsyncRunner, SimError> {
        let shared = SharedProgram::compile(designs, compile_opts)?;
        Ok(AsyncRunner::from_shared(&shared, cost, kernel_params))
    }

    /// Instantiate an independent session over an already-compiled
    /// program set: fresh kernel, cloned prototype runtimes, zeroed
    /// counters — no recompilation, no copy of the compiled tables or
    /// bytecode (both stay behind the shared `Arc`s).
    pub fn from_shared(
        shared: &SharedProgram,
        cost: CostParams,
        kernel_params: KernelParams,
    ) -> AsyncRunner {
        let mut kernel = Kernel::new(kernel_params);
        let mut tasks = Vec::new();
        for prog in &shared.tasks {
            let id = kernel.add_task(
                prog.design.entry.clone(),
                prog.priority,
                prog.watches.clone(),
            );
            tasks.push(Task {
                rt: prog.proto_rt.clone(),
                state: prog.efsm.init,
                prog: Arc::clone(prog),
                id,
                demoted_states: BitSet::new(),
                fuel_credit: 0,
            });
        }
        let table = Arc::clone(&shared.sig_table);
        let counts = vec![0; table.len()];
        AsyncRunner {
            tasks,
            kernel,
            cost,
            recorder: Recorder::new(Arc::clone(&table)),
            table,
            backend: Backend::default(),
            instant: 0,
            counts,
            watchdog: None,
            in_instant: false,
            session: 0,
            delayed: Vec::new(),
            evset_scratch: BitSet::new(),
            local_scratch: BitSet::new(),
            emit_scratch: Vec::new(),
            order_scratch: Vec::new(),
            fault_scratch: BitSet::new(),
        }
    }

    /// Tag this runner with a fleet session id — carried on its
    /// telemetry `error` lines (and by the supervisor's `run_*`
    /// events) so fleet JSONL streams are attributable per session.
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    /// The session id this runner is tagged with (0 outside a fleet).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Access the kernel (cycle counters, loss statistics).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The design-wide signal interner.
    pub fn sig_table(&self) -> &Arc<SigTable> {
        &self.table
    }

    /// The designs running in the tasks.
    pub fn designs(&self) -> impl Iterator<Item = &Design> {
        self.tasks.iter().map(|t| &t.prog.design)
    }

    /// The compiled machines.
    pub fn machines(&self) -> impl Iterator<Item = &Efsm> {
        self.tasks.iter().map(|t| &t.prog.efsm)
    }

    /// Choose the execution backend for every task — control dispatch
    /// and data hooks switch together. See [`Runner::set_backend`].
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        for t in &mut self.tasks {
            t.rt.set_backend(backend);
        }
    }

    /// The active execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Compiled-backend coverage, one [`TaskCoverage`] per task.
    pub fn coverage(&self) -> CoverageReport {
        CoverageReport {
            tasks: self
                .tasks
                .iter()
                .map(|t| {
                    let (vm_compiled, vm_total) = t.rt.vm_coverage();
                    TaskCoverage {
                        task: t.prog.design.entry.clone(),
                        states: t.prog.efsm.states.len() as u32,
                        fused_states: t.prog.table.fused_states(),
                        fused_rows: t.prog.table.row_count() as u32,
                        vm_compiled,
                        vm_total,
                        demoted_states: t.demoted_states.len() as u32,
                        demoted_hooks: t.rt.demoted_hooks(),
                    }
                })
                .collect(),
        }
    }

    /// Install (or clear) the per-instant watchdog budgets.
    pub fn set_watchdog(&mut self, wd: Option<WatchdogBudget>) {
        self.watchdog = wd;
    }

    /// The active watchdog budgets, if any.
    pub fn watchdog(&self) -> Option<WatchdogBudget> {
        self.watchdog
    }

    /// Did a panic unwind through an instant, leaving the runner
    /// state torn? A poisoned runner refuses further instants.
    pub fn is_poisoned(&self) -> bool {
        self.in_instant
    }

    /// Table states latched onto the walker by the degradation
    /// ladder, summed over tasks.
    pub fn demoted_states(&self) -> u32 {
        self.tasks
            .iter()
            .map(|t| t.demoted_states.len() as u32)
            .sum()
    }

    /// Set the value of a valued *external* input on every task that
    /// reads it (the testbench side of `emit_v`).
    ///
    /// # Errors
    ///
    /// Fails when no task knows the signal.
    pub fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        let Some(id) = self.table.lookup(name) else {
            return err(format!("no task reads signal `{name}`"));
        };
        self.set_input_i64_id(id, v)
    }

    /// [`AsyncRunner::set_input_i64`] by interned id.
    ///
    /// # Errors
    ///
    /// Fails when no task knows the signal, or the signal is pure.
    pub fn set_input_i64_id(&mut self, sig: SigId, v: i64) -> Result<(), SimError> {
        let mut hit = false;
        let entry_err = |t: &Task, e: ecl_core::rt::RtError| {
            SimError::eval(format!("task `{}`: {e}", t.prog.design.entry))
        };
        for ti in 0..self.tasks.len() {
            let Some(Some(local)) = self.tasks[ti].prog.from_global.get(sig.bit()).copied() else {
                continue;
            };
            let t = &mut self.tasks[ti];
            t.rt.set_input_i64_idx(local.0 as usize, v)
                .map_err(|e| entry_err(t, e))?;
            hit = true;
        }
        if !hit {
            return err(format!("no task reads signal `{}`", self.table.name(sig)));
        }
        self.recorder.note_input(sig, v);
        Ok(())
    }

    /// Run one environment instant entirely on interned ids: post the
    /// external `events`, tick every task once (the paper's footnote:
    /// tasks with pending `await ()` deltas must be rescheduled even
    /// without events), then run event cascades to quiescence. The
    /// emitted ids land in `out` (cleared first); delivery order is
    /// retained internally for the name shim. Allocation-free in
    /// steady state.
    ///
    /// With a fault plan installed, the external drop/delay sites are
    /// applied here (keyed by `(instant, signal)`, identically on the
    /// interpreter runner), and a panic that unwinds through the
    /// instant latches the poisoned flag: further instants are
    /// refused with [`SimErrorKind::Poisoned`] instead of running on
    /// torn state.
    ///
    /// # Errors
    ///
    /// Propagates data-evaluation errors from any task; trips the
    /// watchdog budgets, if set.
    pub fn instant_ids(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError> {
        if self.in_instant {
            return Err(SimError::poisoned(
                "runner state torn by a panic in an earlier instant",
            ));
        }
        if !ecl_faults::enabled() && self.delayed.is_empty() {
            self.in_instant = true;
            let r = self.instant_ids_inner(events, out);
            self.in_instant = false;
            return r;
        }
        // Fault-adjusted stimulus set: drop/delay fresh events, then
        // merge delayed ones that are due (keyed decisions — the
        // interpreter runner computes the identical set).
        let mut scratch = std::mem::take(&mut self.fault_scratch);
        scratch.clear();
        let now = self.instant;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                scratch.insert(self.delayed.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        for bit in events.iter() {
            if ecl_faults::drop_external(now, bit as u32) {
                continue;
            }
            if let Some(d) = ecl_faults::delay_external(now, bit as u32) {
                self.delayed.push((now + d, bit));
                continue;
            }
            scratch.insert(bit);
        }
        self.in_instant = true;
        let r = self.instant_ids_inner(&scratch, out);
        self.in_instant = false;
        self.fault_scratch = scratch;
        r
    }

    fn instant_ids_inner(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError> {
        let faults = ecl_faults::enabled();
        if faults {
            if ecl_faults::panic_due(self.instant) {
                panic!("ecl-faults: injected panic at instant {}", self.instant);
            }
            self.kernel.flush_deferred();
            if let Some(cap) = ecl_faults::fuel_cap(self.instant) {
                for t in &mut self.tasks {
                    let fuel = t.rt.machine().fuel();
                    if fuel > cap {
                        t.rt.machine_mut().set_fuel(cap);
                        t.fuel_credit = fuel - cap;
                    }
                }
            }
        }
        let wall_t0 = self
            .watchdog
            .and_then(|w| w.max_wall_ns.map(|_| std::time::Instant::now()));
        let mut nodes_spent = 0u64;
        let mut fuel_spent = 0u64;
        out.clear();
        self.order_scratch.clear();
        self.recorder.begin(self.instant, events);
        for e in events.iter() {
            self.kernel.post_external(e as u32);
        }
        // Phase 1: periodic tick — every task reacts once.
        for ti in 0..self.tasks.len() {
            let id = self.tasks[ti].id;
            self.kernel.dispatch_into(id, &mut self.evset_scratch);
            let (nodes, ops) = self.react_task(ti, out)?;
            nodes_spent += nodes as u64;
            fuel_spent += ops;
        }
        // Phase 2: cascades from internal emissions.
        let mut budget = 100_000u32; // runaway guard
        while let Some(tid) = self.kernel.schedule_into(&mut self.evset_scratch) {
            budget = budget.checked_sub(1).ok_or_else(|| {
                SimError::livelock("asynchronous network livelock (tasks keep waking each other)")
            })?;
            let ti = self
                .tasks
                .iter()
                .position(|t| t.id == tid)
                .expect("scheduled task exists");
            let (nodes, ops) = self.react_task(ti, out)?;
            nodes_spent += nodes as u64;
            fuel_spent += ops;
        }
        if faults {
            // Hand back the fuel the starvation squeeze withheld —
            // starvation is per instant, not permanent.
            for t in &mut self.tasks {
                if t.fuel_credit > 0 {
                    let fuel = t.rt.machine().fuel();
                    t.rt.machine_mut().set_fuel(fuel + t.fuel_credit);
                    t.fuel_credit = 0;
                }
            }
        }
        self.recorder.end();
        self.instant += 1;
        check_watchdog(
            self.watchdog,
            self.instant - 1,
            nodes_spent,
            fuel_spent,
            wall_t0,
        )
    }

    /// Run one environment instant; returns the names emitted during
    /// the instant (in delivery order). Compatibility shim over
    /// [`AsyncRunner::instant_ids`]; unknown event names are ignored.
    ///
    /// # Errors
    ///
    /// Propagates data-evaluation errors from any task.
    pub fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        let ev: BitSet = events
            .iter()
            .filter_map(|n| self.table.lookup(n))
            .map(SigId::bit)
            .collect();
        let mut out = BitSet::new();
        self.instant_ids(&ev, &mut out)?;
        Ok(self
            .order_scratch
            .iter()
            .map(|id| self.table.name(*id).to_string())
            .collect())
    }

    /// Run one reaction of task `ti` with `evset_scratch` as the
    /// present input snapshot (global ids), accumulating emissions
    /// into `out` and `order_scratch`. Returns `(nodes visited, fuel
    /// burned)` for the watchdog accounting.
    fn react_task(&mut self, ti: usize, out: &mut BitSet) -> Result<(u32, u64), SimError> {
        // Map the global event snapshot into the task's signal space.
        self.local_scratch.clear();
        {
            let t = &self.tasks[ti];
            for g in self.evset_scratch.iter() {
                if let Some(Some(local)) = t.prog.from_global.get(g) {
                    self.local_scratch.insert(local.0 as usize);
                }
            }
        }
        let fuel_before = self.tasks[ti].rt.machine().fuel();
        let emit_base = self.emit_scratch.len();
        debug_assert_eq!(emit_base, 0);
        let r = {
            let t = &mut self.tasks[ti];
            let mut compiled = self.backend == Backend::Compiled;
            // Graceful degradation: a state whose fused rows were
            // demoted stays on the walker (latched). The extra
            // branches only run with a plan installed or after a
            // demotion — the fault-free hot path is untouched.
            if compiled && (!t.demoted_states.is_empty() || ecl_faults::enabled()) {
                if t.demoted_states.contains(t.state.0 as usize) {
                    compiled = false;
                } else if ecl_faults::table_fault(ti, t.state.0) {
                    t.demoted_states.insert(t.state.0 as usize);
                    ecl_faults::note_degraded("table", "state", t.state.0 as u64);
                    compiled = false;
                }
            }
            let r = if compiled {
                t.prog.table.step_table(
                    &t.prog.efsm,
                    t.state,
                    &self.local_scratch,
                    &mut t.rt,
                    &mut self.emit_scratch,
                )
            } else {
                t.prog.efsm.step_bits(
                    t.state,
                    &self.local_scratch,
                    &mut t.rt,
                    &mut self.emit_scratch,
                )
            };
            t.state = r.next;
            if let Some(e) = t.rt.take_error() {
                self.emit_scratch.clear();
                return err(format!("task `{}`: {e}", t.prog.design.entry));
            }
            r
        };
        // Cycle charges for the reaction.
        let fuel_after = self.tasks[ti].rt.machine().fuel();
        let ops = fuel_before.saturating_sub(fuel_after);
        let cycles = self.cost.cyc_reaction_base
            + r.nodes_visited as u64 * self.cost.cyc_test
            + ops * self.cost.cyc_per_op
            + self.emit_scratch.len() as u64 * self.cost.cyc_emit;
        self.kernel.charge_task(cycles);
        // Deliver emissions: values first, then events.
        let tid = self.tasks[ti].id;
        for k in 0..self.emit_scratch.len() {
            let local = self.emit_scratch[k];
            let gid = self.tasks[ti].prog.to_global[local.0 as usize];
            if self.recorder.is_enabled() {
                let t = &self.tasks[ti];
                let traced =
                    t.rt.signal_value(local.0 as usize)
                        .and_then(|v| trace_value(&t.rt, v));
                self.recorder.emit(gid, traced);
            }
            // Copy the value into every *other* task that reads it
            // (single-task runs skip the clone entirely).
            if self.tasks.len() > 1 && self.tasks[ti].prog.valued[local.0 as usize] {
                let value = self.tasks[ti].rt.signal_value(local.0 as usize).cloned();
                if let Some(v) = value {
                    for rj in 0..self.tasks.len() {
                        if rj == ti {
                            continue;
                        }
                        let Some(Some(lj)) =
                            self.tasks[rj].prog.from_global.get(gid.bit()).copied()
                        else {
                            continue;
                        };
                        let _ = self.tasks[rj].rt.set_input_value_idx(lj.0 as usize, &v);
                        self.kernel
                            .charge_task(v.bytes.len() as u64 * self.cost.cyc_per_value_byte);
                    }
                }
            }
            self.kernel.post_internal(tid, gid.0);
            self.counts[gid.bit()] += 1;
            self.order_scratch.push(gid);
            out.insert(gid.bit());
        }
        self.emit_scratch.clear();
        Ok((r.nodes_visited, ops))
    }
}

/// One task's private mutable state inside a [`RunnerSnapshot`].
#[derive(Clone)]
struct TaskSnapshot {
    state: StateId,
    rt: Rt,
    demoted_states: BitSet,
    fuel_credit: u64,
}

/// The full mutable reaction state of an [`AsyncRunner`] captured at
/// an instant boundary: kernel mailboxes and deferred queues, every
/// task's EFSM control state and data runtime (slot file, signal
/// values, demotion latches, fuel), emission counters, the trace
/// ring, pending delayed stimuli, the backend choice and the watchdog
/// budgets. Restoring it resumes the session bit-identically — VCD
/// bytes, verdicts, `nodes_visited` and fuel all match a run that was
/// never interrupted (property-tested in `tests/checkpoint.rs`).
#[derive(Clone)]
pub struct RunnerSnapshot {
    instant: u64,
    backend: Backend,
    kernel: Kernel,
    counts: Vec<u64>,
    recorder: Recorder,
    watchdog: Option<WatchdogBudget>,
    delayed: Vec<(u64, usize)>,
    session: u64,
    tasks: Vec<TaskSnapshot>,
}

impl RunnerSnapshot {
    /// The instant the snapshot was taken at (the next one to run).
    pub fn instant(&self) -> u64 {
        self.instant
    }
}

/// Checkpoint/restore of a runner's mutable state at instant
/// boundaries — the state-extraction surface the fleet supervisor
/// builds restart-with-backoff on.
pub trait Snapshot {
    /// Capture the full mutable reaction state. Only valid at an
    /// instant boundary.
    ///
    /// # Errors
    ///
    /// [`SimErrorKind::Poisoned`] when called mid-instant (a poisoned
    /// runner's state is torn; restore from an earlier snapshot
    /// instead).
    fn snapshot(&self) -> Result<RunnerSnapshot, SimError>;

    /// Restore a previously captured state, clearing any poisoning —
    /// this is what makes restart-after-panic safe: every byte of
    /// torn state is replaced by the checkpoint's copy.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot was taken from a runner with a
    /// different task topology.
    fn restore(&mut self, snap: &RunnerSnapshot) -> Result<(), SimError>;
}

impl Snapshot for AsyncRunner {
    fn snapshot(&self) -> Result<RunnerSnapshot, SimError> {
        if self.in_instant {
            return Err(SimError::poisoned(
                "cannot snapshot mid-instant (runner state is torn)",
            ));
        }
        Ok(RunnerSnapshot {
            instant: self.instant,
            backend: self.backend,
            kernel: self.kernel.clone(),
            counts: self.counts.clone(),
            recorder: self.recorder.clone(),
            watchdog: self.watchdog,
            delayed: self.delayed.clone(),
            session: self.session,
            tasks: self
                .tasks
                .iter()
                .map(|t| TaskSnapshot {
                    state: t.state,
                    rt: t.rt.clone(),
                    demoted_states: t.demoted_states.clone(),
                    fuel_credit: t.fuel_credit,
                })
                .collect(),
        })
    }

    fn restore(&mut self, snap: &RunnerSnapshot) -> Result<(), SimError> {
        if snap.tasks.len() != self.tasks.len() {
            return err(format!(
                "snapshot has {} tasks, runner has {}",
                snap.tasks.len(),
                self.tasks.len()
            ));
        }
        self.instant = snap.instant;
        self.backend = snap.backend;
        self.kernel = snap.kernel.clone();
        self.counts = snap.counts.clone();
        self.recorder = snap.recorder.clone();
        self.watchdog = snap.watchdog;
        self.delayed = snap.delayed.clone();
        self.session = snap.session;
        for (t, s) in self.tasks.iter_mut().zip(&snap.tasks) {
            t.state = s.state;
            t.rt = s.rt.clone();
            t.demoted_states = s.demoted_states.clone();
            t.fuel_credit = s.fuel_credit;
        }
        // A restore heals a poisoned runner: the torn state (including
        // any half-filled scratch) is gone.
        self.in_instant = false;
        self.emit_scratch.clear();
        self.order_scratch.clear();
        Ok(())
    }
}

/// Interpreter-backed single-design runner (reference semantics, used
/// for differential testing against [`AsyncRunner`] with one task).
pub struct InterpRunner<'d> {
    design: &'d Design,
    machine: esterel::Machine<'d>,
    rt: Rt,
    table: Arc<SigTable>,
    /// Emission counts by interned id.
    counts: Vec<u64>,
    /// Current environment instant number.
    pub instant: u64,
    recorder: Recorder,
    order_scratch: Vec<SigId>,
    /// Per-instant resource budgets (None = no watchdog).
    watchdog: Option<WatchdogBudget>,
    /// Panic-poisoning latch, as on [`AsyncRunner`].
    in_instant: bool,
    /// Externally-delayed events: `(due instant, signal bit)`.
    delayed: Vec<(u64, usize)>,
    /// Effective-stimulus scratch for fault-adjusted instants.
    fault_scratch: BitSet,
}

impl<'d> InterpRunner<'d> {
    /// Build a runner over a design.
    ///
    /// # Errors
    ///
    /// Propagates runtime construction failures.
    pub fn new(design: &'d Design) -> Result<InterpRunner<'d>, SimError> {
        let rt = design.new_rt().map_err(|e| SimError::eval(e.to_string()))?;
        // Interning in program order makes SigId(i) ≡ Signal(i): the
        // global and local signal spaces coincide for a single design.
        let mut table = SigTable::new();
        for info in design.program().signals() {
            table.intern(&info.name);
        }
        let table = Arc::new(table);
        let counts = vec![0; table.len()];
        Ok(InterpRunner {
            design,
            machine: esterel::Machine::new(design.program()),
            rt,
            recorder: Recorder::new(Arc::clone(&table)),
            table,
            counts,
            instant: 0,
            order_scratch: Vec::new(),
            watchdog: None,
            in_instant: false,
            delayed: Vec::new(),
            fault_scratch: BitSet::new(),
        })
    }

    /// The design-wide signal interner.
    pub fn sig_table(&self) -> &Arc<SigTable> {
        &self.table
    }

    /// Set a valued input.
    ///
    /// # Errors
    ///
    /// Unknown/pure signal.
    pub fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        let Some(id) = self.table.lookup(name) else {
            return err(format!("unknown signal `{name}`"));
        };
        self.set_input_i64_id(id, v)
    }

    /// [`InterpRunner::set_input_i64`] by interned id.
    ///
    /// # Errors
    ///
    /// Unknown/pure signal.
    pub fn set_input_i64_id(&mut self, sig: SigId, v: i64) -> Result<(), SimError> {
        self.rt
            .set_input_i64_idx(sig.bit(), v)
            .map_err(|e| SimError::eval(e.to_string()))?;
        self.recorder.note_input(sig, v);
        Ok(())
    }

    /// Run one instant on interned ids; emitted ids land in `out`
    /// (cleared first). For this runner global ids coincide with the
    /// program's signal indices, so `events` feeds the interpreter
    /// directly.
    ///
    /// With a fault plan installed, the external drop/delay sites are
    /// applied with the same `(instant, signal)` keys as on
    /// [`AsyncRunner`], so a kernel-free plan replays identically on
    /// both runners.
    ///
    /// # Errors
    ///
    /// Non-constructive programs and data errors; watchdog trips.
    pub fn instant_ids(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError> {
        if self.in_instant {
            return Err(SimError::poisoned(
                "runner state torn by a panic in an earlier instant",
            ));
        }
        if !ecl_faults::enabled() && self.delayed.is_empty() {
            self.in_instant = true;
            let r = self.instant_ids_inner(events, out);
            self.in_instant = false;
            return r;
        }
        let mut scratch = std::mem::take(&mut self.fault_scratch);
        scratch.clear();
        let now = self.instant;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                scratch.insert(self.delayed.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        for bit in events.iter() {
            if ecl_faults::drop_external(now, bit as u32) {
                continue;
            }
            if let Some(d) = ecl_faults::delay_external(now, bit as u32) {
                self.delayed.push((now + d, bit));
                continue;
            }
            scratch.insert(bit);
        }
        self.in_instant = true;
        let r = self.instant_ids_inner(&scratch, out);
        self.in_instant = false;
        self.fault_scratch = scratch;
        r
    }

    fn instant_ids_inner(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError> {
        let mut fuel_credit = 0u64;
        if ecl_faults::enabled() {
            if ecl_faults::panic_due(self.instant) {
                panic!("ecl-faults: injected panic at instant {}", self.instant);
            }
            if let Some(cap) = ecl_faults::fuel_cap(self.instant) {
                let fuel = self.rt.machine().fuel();
                if fuel > cap {
                    self.rt.machine_mut().set_fuel(cap);
                    fuel_credit = fuel - cap;
                }
            }
        }
        let wall_t0 = self
            .watchdog
            .and_then(|w| w.max_wall_ns.map(|_| std::time::Instant::now()));
        let fuel_before = self.rt.machine().fuel();
        let passes_before = self.machine.passes;
        out.clear();
        self.order_scratch.clear();
        self.recorder.begin(self.instant, events);
        let r = self
            .machine
            .react_set(events, &mut self.rt as &mut dyn DataHooks)
            .map_err(|e| SimError::eval(e.to_string()))?;
        if let Some(e) = self.rt.take_error() {
            return err(e.to_string());
        }
        for s in &r.emitted {
            let gid = SigId(s.0);
            if self.recorder.is_enabled() {
                let traced = self
                    .rt
                    .signal_value(s.0 as usize)
                    .and_then(|v| trace_value(&self.rt, v));
                self.recorder.emit(gid, traced);
            }
            self.counts[gid.bit()] += 1;
            self.order_scratch.push(gid);
            out.insert(gid.bit());
        }
        let fuel_spent = fuel_before.saturating_sub(self.rt.machine().fuel());
        if fuel_credit > 0 {
            let fuel = self.rt.machine().fuel();
            self.rt.machine_mut().set_fuel(fuel + fuel_credit);
        }
        self.recorder.end();
        self.instant += 1;
        let passes = self.machine.passes - passes_before;
        check_watchdog(self.watchdog, self.instant - 1, passes, fuel_spent, wall_t0)
    }

    /// Run one instant; returns emitted names. Compatibility shim over
    /// [`InterpRunner::instant_ids`]; unknown event names are ignored.
    ///
    /// # Errors
    ///
    /// Non-constructive programs and data errors.
    pub fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        let ev: BitSet = events
            .iter()
            .filter_map(|n| self.table.lookup(n))
            .map(SigId::bit)
            .collect();
        let mut out = BitSet::new();
        self.instant_ids(&ev, &mut out)?;
        Ok(self
            .order_scratch
            .iter()
            .map(|id| self.table.name(*id).to_string())
            .collect())
    }

    /// Choose the data-hook backend. The reactive side — the
    /// constructive Esterel interpreter — evaluates the very same
    /// hooks either way; only the data path switches between bytecode
    /// VM and tree-walker, so [`Backend::Compiled`] here means
    /// "compiled data hooks", never fused control rows.
    pub fn set_backend(&mut self, backend: Backend) {
        self.rt.set_backend(backend);
    }

    /// The active data-hook backend.
    pub fn backend(&self) -> Backend {
        self.rt.backend()
    }

    /// Compiled-backend coverage of the single design. Control always
    /// runs on the constructive interpreter here, so the report covers
    /// the data path only (`states == fused_states == 0`).
    pub fn coverage(&self) -> CoverageReport {
        let (vm_compiled, vm_total) = self.rt.vm_coverage();
        CoverageReport {
            tasks: vec![TaskCoverage {
                task: self.design.entry.clone(),
                states: 0,
                fused_states: 0,
                fused_rows: 0,
                vm_compiled,
                vm_total,
                demoted_states: 0,
                demoted_hooks: self.rt.demoted_hooks(),
            }],
        }
    }

    /// Access the runtime (inspect signal values).
    pub fn rt(&self) -> &Rt {
        &self.rt
    }

    /// Install (or clear) the per-instant watchdog budgets.
    pub fn set_watchdog(&mut self, wd: Option<WatchdogBudget>) {
        self.watchdog = wd;
    }

    /// The active watchdog budgets, if any.
    pub fn watchdog(&self) -> Option<WatchdogBudget> {
        self.watchdog
    }

    /// Did a panic unwind through an instant, leaving the runner
    /// state torn? A poisoned runner refuses further instants.
    pub fn is_poisoned(&self) -> bool {
        self.in_instant
    }

    /// The design this runner executes.
    pub fn design(&self) -> &'d Design {
        self.design
    }
}

impl Runner for AsyncRunner {
    fn set_backend(&mut self, backend: Backend) {
        AsyncRunner::set_backend(self, backend)
    }

    fn backend(&self) -> Backend {
        AsyncRunner::backend(self)
    }

    fn coverage(&self) -> CoverageReport {
        AsyncRunner::coverage(self)
    }

    fn sig_table(&self) -> &Arc<SigTable> {
        AsyncRunner::sig_table(self)
    }

    fn trace_slot(&self) -> &Recorder {
        &self.recorder
    }

    fn trace_slot_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    fn counts_slot(&self) -> &[u64] {
        &self.counts
    }

    fn set_input_i64_id(&mut self, sig: SigId, v: i64) -> Result<(), SimError> {
        AsyncRunner::set_input_i64_id(self, sig, v)
    }

    fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        AsyncRunner::set_input_i64(self, name, v)
    }

    fn instant_ids(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError> {
        AsyncRunner::instant_ids(self, events, out)
    }

    fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        AsyncRunner::instant(self, events)
    }

    fn now(&self) -> u64 {
        self.instant
    }

    fn session_id(&self) -> u64 {
        self.session
    }

    fn emit_losses(&self) {
        self.kernel.emit_events_lost_event();
    }
}

impl<'d> Runner for InterpRunner<'d> {
    fn set_backend(&mut self, backend: Backend) {
        InterpRunner::set_backend(self, backend)
    }

    fn backend(&self) -> Backend {
        InterpRunner::backend(self)
    }

    fn coverage(&self) -> CoverageReport {
        InterpRunner::coverage(self)
    }

    fn sig_table(&self) -> &Arc<SigTable> {
        InterpRunner::sig_table(self)
    }

    fn trace_slot(&self) -> &Recorder {
        &self.recorder
    }

    fn trace_slot_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    fn counts_slot(&self) -> &[u64] {
        &self.counts
    }

    fn set_input_i64_id(&mut self, sig: SigId, v: i64) -> Result<(), SimError> {
        InterpRunner::set_input_i64_id(self, sig, v)
    }

    fn set_input_i64(&mut self, name: &str, v: i64) -> Result<(), SimError> {
        InterpRunner::set_input_i64(self, name, v)
    }

    fn instant_ids(&mut self, events: &BitSet, out: &mut BitSet) -> Result<(), SimError> {
        InterpRunner::instant_ids(self, events, out)
    }

    fn instant(&mut self, events: &[&str]) -> Result<Vec<String>, SimError> {
        InterpRunner::instant(self, events)
    }

    fn now(&self) -> u64 {
        self.instant
    }
}
impl From<SimError> for ecl_syntax::EclError {
    fn from(e: SimError) -> Self {
        ecl_syntax::EclError::msg(
            ecl_syntax::Stage::Sim,
            e.msg.clone(),
            ecl_syntax::Span::dummy(),
        )
    }
}

impl From<ecl_syntax::EclError> for SimError {
    fn from(e: ecl_syntax::EclError) -> Self {
        SimError::eval(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_core::Compiler;

    const RELAY: &str = "
        module a(input pure i, output pure m) { while (1) { await (i); emit (m); } }
        module b(input pure m, output pure o) { while (1) { await (m); emit (o); } }
        module top(input pure i, output pure o) {
          signal pure mid;
          par { a(i, mid); b(mid, o); }
        }";

    #[test]
    fn single_task_runner_relays() {
        let d = Compiler::default().compile_str(RELAY, "top").unwrap();
        let mut r = AsyncRunner::new(
            vec![d],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        // Warm-up instant (awaits start), then i.
        r.instant(&[]).unwrap();
        r.instant(&["i"]).unwrap();
        // Synchronous whole-program machine: mid and o fire in the same
        // reaction chain... mid is compiled away as a local; o needs a
        // second i? No: within one EFSM, await(mid) sees the emission
        // only in a later instant (delayed await). Drive more instants.
        let mut got_o = false;
        for _ in 0..4 {
            let e = r.instant(&["i"]).unwrap();
            if e.iter().any(|n| n == "o") {
                got_o = true;
            }
        }
        assert!(got_o, "o should fire; counts: {:?}", r.counts());
        assert!(r.kernel().task_cycles > 0);
        assert!(r.kernel().rtos_cycles > 0);
    }

    #[test]
    fn partitioned_runner_relays_via_mailboxes() {
        let parts = Compiler::default().partition(RELAY, "top").unwrap();
        let mut r = AsyncRunner::new(
            parts,
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        r.instant(&[]).unwrap();
        let mut got_o = false;
        for _ in 0..6 {
            let e = r.instant(&["i"]).unwrap();
            if e.iter().any(|n| n == "o") {
                got_o = true;
            }
        }
        assert!(got_o, "counts: {:?}", r.counts());
        // Internal deliveries happened.
        assert!(r.kernel().deliveries > 0);
    }

    #[test]
    fn interp_runner_matches_async_single_task() {
        use rand::{Rng, SeedableRng};
        let d = Compiler::default().compile_str(RELAY, "top").unwrap();
        let mut interp = InterpRunner::new(&d).unwrap();
        let mut efsm_run = AsyncRunner::new(
            vec![d.clone()],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for step in 0..120 {
            let on = rng.gen_bool(0.5);
            let ev: Vec<&str> = if on { vec!["i"] } else { vec![] };
            let mut a = interp.instant(&ev).unwrap();
            let mut b = efsm_run.instant(&ev).unwrap();
            // Only compare design outputs (locals are reported by the
            // interpreter too; the compiled machine also reports them —
            // both should agree on `o`).
            a.retain(|n| n == "o");
            b.retain(|n| n == "o");
            assert_eq!(a, b, "step {step}");
        }
    }

    #[test]
    fn instant_ids_matches_the_name_shim() {
        let d = Compiler::default().compile_str(RELAY, "top").unwrap();
        let mut by_name = AsyncRunner::new(
            vec![d.clone()],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        let mut by_id = AsyncRunner::new(
            vec![d],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap();
        let i = by_id.sig_table().lookup("i").unwrap();
        let mut out = BitSet::new();
        for step in 0..40 {
            let on = step % 3 != 0;
            let names = by_name.instant(if on { &["i"] } else { &[] }).unwrap();
            let ev: BitSet = if on {
                [i.bit()].into_iter().collect()
            } else {
                BitSet::new()
            };
            by_id.instant_ids(&ev, &mut out).unwrap();
            let mut got: Vec<&str> = by_id.sig_table().names_of(&out).collect();
            let mut want: Vec<&str> = names.iter().map(String::as_str).collect();
            got.sort_unstable();
            want.sort_unstable();
            want.dedup();
            assert_eq!(got, want, "step {step}");
        }
    }

    #[test]
    fn present_set_resolves_names_lazily() {
        let mut table = SigTable::new();
        let a = table.intern("a");
        let b = table.intern("b");
        let set: BitSet = [a.bit(), b.bit()].into_iter().collect();
        let p = Present::new(&table, &set);
        assert!(p.contains_id(a));
        assert!(p.contains("b"));
        assert!(!p.contains("c"));
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(p.to_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
