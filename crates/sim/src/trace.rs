//! Signal-trace recording: a ring-buffered per-instant event log with
//! a VCD-style text dump.
//!
//! Both runners ([`crate::runner::InterpRunner`] and
//! [`crate::runner::AsyncRunner`]) can record every signal occurrence
//! — external stimuli and design emissions alike — into a [`Trace`].
//! The trace serves two consumers:
//!
//! * **online monitors** (`ecl-observe`): the per-instant present sets
//!   are exactly what a monitor EFSM steps on, so a stored trace can be
//!   replayed against a monitor after the fact with identical verdicts;
//! * **offline inspection**: [`Trace::to_vcd`] renders the retained
//!   window as a Value Change Dump (pulse wires for pure signals,
//!   integer vectors for valued ones) for waveform viewers and golden
//!   tests.
//!
//! Events store interned [`SigId`]s, not names: the recording hot path
//! never touches strings, and names are resolved against the trace's
//! shared [`SigTable`] only at dump/report time.
//!
//! The buffer is a ring over *instants*: with capacity `N`, only the
//! last `N` instants are retained and [`Trace::dropped`] counts the
//! evicted ones. Capacity 0 means unbounded.

use ecl_telemetry::metrics as tm;
use efsm::{BitSet, SigId, SigTable};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// One signal occurrence inside an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned global signal id (resolve via [`Trace::table`]).
    pub sig: SigId,
    /// Carried value for valued signals (`None` for pure presence).
    pub value: Option<i64>,
    /// `true` for environment stimuli, `false` for design emissions.
    pub external: bool,
}

/// All events of one environment instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceRecord {
    /// Environment instant number.
    pub instant: u64,
    /// Events in occurrence order (externals first).
    pub events: Vec<TraceEvent>,
}

impl TraceRecord {
    /// The distinct present signal ids, in first-occurrence order.
    pub fn present_ids(&self) -> Vec<SigId> {
        let mut out: Vec<SigId> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.sig) {
                out.push(e.sig);
            }
        }
        out
    }

    /// Insert every present id into `set` (not cleared first).
    pub fn present_into(&self, set: &mut BitSet) {
        for e in &self.events {
            set.insert(e.sig.bit());
        }
    }
}

/// A ring-buffered recording of per-instant signal events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    current: Option<TraceRecord>,
    table: Arc<SigTable>,
    /// Instants evicted from the ring (recorded then dropped).
    pub dropped: u64,
}

impl Trace {
    /// A trace retaining the last `capacity` instants (0 = unbounded),
    /// with its own (initially empty) signal table — names are interned
    /// on first [`Trace::record`].
    pub fn new(capacity: usize) -> Trace {
        Trace {
            capacity,
            ..Trace::default()
        }
    }

    /// A trace sharing an existing signal table (the runner path: ids
    /// recorded via [`Trace::record_id`] must come from `table`).
    pub fn with_table(capacity: usize, table: Arc<SigTable>) -> Trace {
        Trace {
            capacity,
            table,
            ..Trace::default()
        }
    }

    /// The signal table the recorded ids resolve against.
    pub fn table(&self) -> &SigTable {
        &self.table
    }

    /// The distinct present names of `rec`, in first-occurrence order.
    pub fn present_names<'a>(&'a self, rec: &TraceRecord) -> Vec<&'a str> {
        rec.present_ids()
            .into_iter()
            .map(|id| self.table.name(id))
            .collect()
    }

    /// Open the record for environment instant `instant`. Implicitly
    /// closes a still-open record (runners call this once per instant).
    pub fn begin_instant(&mut self, instant: u64) {
        self.end_instant();
        self.current = Some(TraceRecord {
            instant,
            events: Vec::new(),
        });
    }

    /// Append one event by *name* to the open record, interning the
    /// name into the trace's own table. Compatibility/test entry point;
    /// runners record pre-interned ids via [`Trace::record_id`]. A
    /// no-op when no record is open (recording disabled mid-run is not
    /// an error).
    pub fn record(&mut self, name: &str, value: Option<i64>, external: bool) {
        if self.current.is_none() {
            return;
        }
        let sig = match self.table.lookup(name) {
            Some(id) => id,
            None => Arc::make_mut(&mut self.table).intern(name),
        };
        self.record_id(sig, value, external);
    }

    /// Append one event to the open record. A no-op when no record is
    /// open.
    pub fn record_id(&mut self, sig: SigId, value: Option<i64>, external: bool) {
        if let Some(cur) = &mut self.current {
            cur.events.push(TraceEvent {
                sig,
                value,
                external,
            });
        }
    }

    /// Close the open record and push it into the ring, evicting the
    /// oldest instant when over capacity.
    pub fn end_instant(&mut self) {
        if let Some(rec) = self.current.take() {
            self.records.push_back(rec);
            if self.capacity != 0 {
                while self.records.len() > self.capacity {
                    self.records.pop_front();
                    self.dropped += 1;
                    tm::SIM_TRACE_DROPPED.incr();
                }
            }
            if ecl_telemetry::enabled() {
                tm::SIM_TRACE_INSTANTS.raw_add(1);
                tm::SIM_TRACE_OCCUPANCY.raw_record(self.records.len() as u64);
            }
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained instants.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render the retained window as a VCD (Value Change Dump) text.
    ///
    /// Pure signals become 1-bit pulse wires (`1x` at the instant of
    /// occurrence, `0x` at the next dumped instant); valued signals
    /// become 32-bit integer vectors (`b… x`, set to `bx` when the
    /// signal goes absent). Output is fully deterministic: signals are
    /// sorted by name and identifier codes are assigned in that order.
    pub fn to_vcd(&self, title: &str) -> String {
        // Signal inventory over the retained window: name → valued?
        let mut sigs: BTreeMap<&str, bool> = BTreeMap::new();
        for r in &self.records {
            for e in &r.events {
                let v = sigs.entry(self.table.name(e.sig)).or_insert(false);
                *v |= e.value.is_some();
            }
        }
        let names: Vec<&str> = sigs.keys().copied().collect();
        let ids: Vec<String> = (0..names.len()).map(vcd_id).collect();
        let mut out = String::new();
        let _ = writeln!(out, "$comment {title} $end");
        let _ = writeln!(out, "$timescale 1 us $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize_word(title));
        for (name, id) in names.iter().zip(&ids) {
            let valued = sigs[name];
            let _ = writeln!(
                out,
                "$var {} {} {id} {} $end",
                if valued { "integer" } else { "wire" },
                if valued { 32 } else { 1 },
                sanitize_word(name)
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        // Per dumped instant: presence/value per signal, with explicit
        // falling edges for signals that were present last time.
        let mut prev_present: Vec<bool> = vec![false; names.len()];
        for r in &self.records {
            let mut lines: Vec<String> = Vec::new();
            let mut present = vec![false; names.len()];
            for (i, name) in names.iter().enumerate() {
                let ev = r.events.iter().find(|e| self.table.name(e.sig) == *name);
                match ev {
                    Some(e) => {
                        present[i] = true;
                        if sigs[name] {
                            lines.push(format!("b{:b} {}", e.value.unwrap_or(0), ids[i]));
                        } else {
                            lines.push(format!("1{}", ids[i]));
                        }
                    }
                    None if prev_present[i] => {
                        if sigs[name] {
                            lines.push(format!("bx {}", ids[i]));
                        } else {
                            lines.push(format!("0{}", ids[i]));
                        }
                    }
                    None => {}
                }
            }
            if !lines.is_empty() {
                let _ = writeln!(out, "#{}", r.instant);
                for l in lines {
                    let _ = writeln!(out, "{l}");
                }
            }
            prev_present = present;
        }
        out
    }
}

/// The recording front-end shared by both runners: an optional
/// [`Trace`] plus the last value written per valued input (indexed by
/// [`SigId`]), so stimulus records carry their values. Every recording
/// method is a no-op while recording is disabled.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Option<Trace>,
    table: Arc<SigTable>,
    last_inputs: Vec<Option<i64>>,
}

impl Recorder {
    /// A recorder whose traces resolve ids against `table`.
    pub fn new(table: Arc<SigTable>) -> Recorder {
        let n = table.len();
        Recorder {
            trace: None,
            table,
            last_inputs: vec![None; n],
        }
    }

    /// Start recording, retaining the last `capacity` instants
    /// (0 = unbounded).
    pub fn enable(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_table(capacity, Arc::clone(&self.table)));
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace recorded so far, if enabled.
    pub fn current(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Detach and return the trace (recording stops).
    pub fn take(&mut self) -> Option<Trace> {
        self.trace.take().map(|mut t| {
            t.end_instant();
            t
        })
    }

    /// Remember the value written to a valued input (recorded with the
    /// input's next stimulus event).
    pub fn note_input(&mut self, sig: SigId, v: i64) {
        if self.last_inputs.len() <= sig.bit() {
            self.last_inputs.resize(sig.bit() + 1, None);
        }
        self.last_inputs[sig.bit()] = Some(v);
    }

    /// Open the record for `instant` and log the external stimuli (a
    /// presence set of interned ids), in id order.
    pub fn begin(&mut self, instant: u64, stimuli: &BitSet) {
        if let Some(tr) = &mut self.trace {
            tr.begin_instant(instant);
            for s in stimuli.iter() {
                let v = self.last_inputs.get(s).copied().flatten();
                tr.record_id(SigId(s as u32), v, true);
            }
        }
    }

    /// Log one design emission into the open record.
    pub fn emit(&mut self, sig: SigId, value: Option<i64>) {
        if let Some(tr) = &mut self.trace {
            tr.record_id(sig, value, false);
        }
    }

    /// Close the instant's record.
    pub fn end(&mut self) {
        if let Some(tr) = &mut self.trace {
            tr.end_instant();
        }
    }
}

/// VCD identifier code for signal index `i` (printable ASCII 33–126,
/// multi-character beyond 94 signals).
fn vcd_id(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// VCD identifiers may not contain whitespace; mangled ECL names
/// (`top::x`, `a#1`) are otherwise legal and kept readable.
fn sanitize_word(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(t: &mut Trace, instant: u64, names: &[&str]) {
        t.begin_instant(instant);
        for n in names {
            t.record(n, None, false);
        }
        t.end_instant();
    }

    #[test]
    fn ring_evicts_oldest_instants() {
        let mut t = Trace::new(2);
        pulse(&mut t, 0, &["a"]);
        pulse(&mut t, 1, &["b"]);
        pulse(&mut t, 2, &["c"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 1);
        let firsts: Vec<u64> = t.records().map(|r| r.instant).collect();
        assert_eq!(firsts, vec![1, 2]);
    }

    #[test]
    fn unbounded_capacity_keeps_everything() {
        let mut t = Trace::new(0);
        for i in 0..100 {
            pulse(&mut t, i, &["x"]);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn present_dedupes_names() {
        let mut t = Trace::new(0);
        t.begin_instant(0);
        t.record("a", None, true);
        t.record("a", None, false);
        t.record("b", Some(7), false);
        t.end_instant();
        let recs: Vec<&TraceRecord> = t.records().collect();
        assert_eq!(t.present_names(recs[0]), vec!["a", "b"]);
        assert_eq!(recs[0].present_ids().len(), 2);
    }

    #[test]
    fn record_by_name_interns_into_the_trace_table() {
        let mut t = Trace::new(0);
        t.begin_instant(0);
        t.record("x", None, true);
        t.record("x", Some(2), false);
        t.end_instant();
        assert_eq!(t.table().len(), 1);
        let rec = t.records().next().unwrap();
        assert_eq!(rec.events[0].sig, rec.events[1].sig);
    }

    #[test]
    fn vcd_is_deterministic_and_has_falling_edges() {
        let build = || {
            let mut t = Trace::new(0);
            t.begin_instant(0);
            t.record("tick", None, true);
            t.record("val", Some(5), false);
            t.end_instant();
            pulse(&mut t, 1, &[]);
            pulse(&mut t, 2, &["tick"]);
            t
        };
        let v1 = build().to_vcd("demo");
        let v2 = build().to_vcd("demo");
        assert_eq!(v1, v2);
        assert!(v1.contains("$var wire 1 ! tick $end"), "{v1}");
        assert!(v1.contains("$var integer 32 \" val $end"), "{v1}");
        assert!(v1.contains("b101 \""), "{v1}");
        // Falling edge at instant 1.
        assert!(v1.contains("#1\n0!\nbx \""), "{v1}");
    }

    #[test]
    fn recorder_carries_input_values_by_id() {
        let mut table = SigTable::new();
        let x = table.intern("x");
        let mut rec = Recorder::new(Arc::new(table));
        rec.enable(0);
        rec.note_input(x, 42);
        let stim: BitSet = [x.bit()].into_iter().collect();
        rec.begin(0, &stim);
        rec.end();
        let tr = rec.take().unwrap();
        let r = tr.records().next().unwrap();
        assert_eq!(r.events[0].sig, x);
        assert_eq!(r.events[0].value, Some(42));
        assert!(r.events[0].external);
    }

    #[test]
    fn vcd_id_codes_are_unique() {
        let ids: std::collections::HashSet<String> = (0..500).map(vcd_id).collect();
        assert_eq!(ids.len(), 500);
    }
}
