//! Signal-trace recording: a ring-buffered per-instant event log with
//! a VCD-style text dump.
//!
//! Both runners ([`crate::runner::InterpRunner`] and
//! [`crate::runner::AsyncRunner`]) can record every signal occurrence
//! — external stimuli and design emissions alike — into a [`Trace`].
//! The trace serves two consumers:
//!
//! * **online monitors** (`ecl-observe`): the per-instant present-name
//!   sets are exactly what a monitor EFSM steps on, so a stored trace
//!   can be replayed against a monitor after the fact with identical
//!   verdicts;
//! * **offline inspection**: [`Trace::to_vcd`] renders the retained
//!   window as a Value Change Dump (pulse wires for pure signals,
//!   integer vectors for valued ones) for waveform viewers and golden
//!   tests.
//!
//! The buffer is a ring over *instants*: with capacity `N`, only the
//! last `N` instants are retained and [`Trace::dropped`] counts the
//! evicted ones. Capacity 0 means unbounded.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

/// One signal occurrence inside an instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global signal name.
    pub name: String,
    /// Carried value for valued signals (`None` for pure presence).
    pub value: Option<i64>,
    /// `true` for environment stimuli, `false` for design emissions.
    pub external: bool,
}

/// All events of one environment instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceRecord {
    /// Environment instant number.
    pub instant: u64,
    /// Events in occurrence order (externals first).
    pub events: Vec<TraceEvent>,
}

impl TraceRecord {
    /// The distinct present signal names, in first-occurrence order.
    pub fn present(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.name.as_str()) {
                out.push(&e.name);
            }
        }
        out
    }
}

/// A ring-buffered recording of per-instant signal events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    current: Option<TraceRecord>,
    /// Instants evicted from the ring (recorded then dropped).
    pub dropped: u64,
}

impl Trace {
    /// A trace retaining the last `capacity` instants (0 = unbounded).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            capacity,
            ..Trace::default()
        }
    }

    /// Open the record for environment instant `instant`. Implicitly
    /// closes a still-open record (runners call this once per instant).
    pub fn begin_instant(&mut self, instant: u64) {
        self.end_instant();
        self.current = Some(TraceRecord {
            instant,
            events: Vec::new(),
        });
    }

    /// Append one event to the open record. A no-op when no record is
    /// open (recording disabled mid-run is not an error).
    pub fn record(&mut self, name: &str, value: Option<i64>, external: bool) {
        if let Some(cur) = &mut self.current {
            cur.events.push(TraceEvent {
                name: name.to_string(),
                value,
                external,
            });
        }
    }

    /// Close the open record and push it into the ring, evicting the
    /// oldest instant when over capacity.
    pub fn end_instant(&mut self) {
        if let Some(rec) = self.current.take() {
            self.records.push_back(rec);
            if self.capacity != 0 {
                while self.records.len() > self.capacity {
                    self.records.pop_front();
                    self.dropped += 1;
                }
            }
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained instants.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render the retained window as a VCD (Value Change Dump) text.
    ///
    /// Pure signals become 1-bit pulse wires (`1x` at the instant of
    /// occurrence, `0x` at the next dumped instant); valued signals
    /// become 32-bit integer vectors (`b… x`, set to `bx` when the
    /// signal goes absent). Output is fully deterministic: signals are
    /// sorted by name and identifier codes are assigned in that order.
    pub fn to_vcd(&self, title: &str) -> String {
        // Signal inventory over the retained window: name → valued?
        let mut sigs: BTreeMap<&str, bool> = BTreeMap::new();
        for r in &self.records {
            for e in &r.events {
                let v = sigs.entry(&e.name).or_insert(false);
                *v |= e.value.is_some();
            }
        }
        let names: Vec<&str> = sigs.keys().copied().collect();
        let ids: Vec<String> = (0..names.len()).map(vcd_id).collect();
        let mut out = String::new();
        let _ = writeln!(out, "$comment {title} $end");
        let _ = writeln!(out, "$timescale 1 us $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize_word(title));
        for (name, id) in names.iter().zip(&ids) {
            let valued = sigs[name];
            let _ = writeln!(
                out,
                "$var {} {} {id} {} $end",
                if valued { "integer" } else { "wire" },
                if valued { 32 } else { 1 },
                sanitize_word(name)
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        // Per dumped instant: presence/value per signal, with explicit
        // falling edges for signals that were present last time.
        let mut prev_present: Vec<bool> = vec![false; names.len()];
        for r in &self.records {
            let mut lines: Vec<String> = Vec::new();
            let mut present = vec![false; names.len()];
            for (i, name) in names.iter().enumerate() {
                let ev = r.events.iter().find(|e| e.name == *name);
                match ev {
                    Some(e) => {
                        present[i] = true;
                        if sigs[name] {
                            lines.push(format!("b{:b} {}", e.value.unwrap_or(0), ids[i]));
                        } else {
                            lines.push(format!("1{}", ids[i]));
                        }
                    }
                    None if prev_present[i] => {
                        if sigs[name] {
                            lines.push(format!("bx {}", ids[i]));
                        } else {
                            lines.push(format!("0{}", ids[i]));
                        }
                    }
                    None => {}
                }
            }
            if !lines.is_empty() {
                let _ = writeln!(out, "#{}", r.instant);
                for l in lines {
                    let _ = writeln!(out, "{l}");
                }
            }
            prev_present = present;
        }
        out
    }
}

/// The recording front-end shared by both runners: an optional
/// [`Trace`] plus the last value written per valued input, so
/// stimulus records carry their values. Every method is a no-op while
/// recording is disabled.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Option<Trace>,
    last_inputs: HashMap<String, i64>,
}

impl Recorder {
    /// Start recording, retaining the last `capacity` instants
    /// (0 = unbounded).
    pub fn enable(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace recorded so far, if enabled.
    pub fn current(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Detach and return the trace (recording stops).
    pub fn take(&mut self) -> Option<Trace> {
        self.trace.take().map(|mut t| {
            t.end_instant();
            t
        })
    }

    /// Remember the value written to a valued input (recorded with the
    /// input's next stimulus event).
    pub fn note_input(&mut self, name: &str, v: i64) {
        self.last_inputs.insert(name.to_string(), v);
    }

    /// Open the record for `instant` and log the external stimuli.
    pub fn begin(&mut self, instant: u64, stimuli: &[&str]) {
        if let Some(tr) = &mut self.trace {
            tr.begin_instant(instant);
            for s in stimuli {
                tr.record(s, self.last_inputs.get(*s).copied(), true);
            }
        }
    }

    /// Log one design emission into the open record.
    pub fn emit(&mut self, name: &str, value: Option<i64>) {
        if let Some(tr) = &mut self.trace {
            tr.record(name, value, false);
        }
    }

    /// Close the instant's record.
    pub fn end(&mut self) {
        if let Some(tr) = &mut self.trace {
            tr.end_instant();
        }
    }
}

/// VCD identifier code for signal index `i` (printable ASCII 33–126,
/// multi-character beyond 94 signals).
fn vcd_id(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// VCD identifiers may not contain whitespace; mangled ECL names
/// (`top::x`, `a#1`) are otherwise legal and kept readable.
fn sanitize_word(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(t: &mut Trace, instant: u64, names: &[&str]) {
        t.begin_instant(instant);
        for n in names {
            t.record(n, None, false);
        }
        t.end_instant();
    }

    #[test]
    fn ring_evicts_oldest_instants() {
        let mut t = Trace::new(2);
        pulse(&mut t, 0, &["a"]);
        pulse(&mut t, 1, &["b"]);
        pulse(&mut t, 2, &["c"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 1);
        let firsts: Vec<u64> = t.records().map(|r| r.instant).collect();
        assert_eq!(firsts, vec![1, 2]);
    }

    #[test]
    fn unbounded_capacity_keeps_everything() {
        let mut t = Trace::new(0);
        for i in 0..100 {
            pulse(&mut t, i, &["x"]);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn present_dedupes_names() {
        let mut t = Trace::new(0);
        t.begin_instant(0);
        t.record("a", None, true);
        t.record("a", None, false);
        t.record("b", Some(7), false);
        t.end_instant();
        let r = t.records().next().unwrap();
        assert_eq!(r.present(), vec!["a", "b"]);
    }

    #[test]
    fn vcd_is_deterministic_and_has_falling_edges() {
        let build = || {
            let mut t = Trace::new(0);
            t.begin_instant(0);
            t.record("tick", None, true);
            t.record("val", Some(5), false);
            t.end_instant();
            pulse(&mut t, 1, &[]);
            pulse(&mut t, 2, &["tick"]);
            t
        };
        let v1 = build().to_vcd("demo");
        let v2 = build().to_vcd("demo");
        assert_eq!(v1, v2);
        assert!(v1.contains("$var wire 1 ! tick $end"), "{v1}");
        assert!(v1.contains("$var integer 32 \" val $end"), "{v1}");
        assert!(v1.contains("b101 \""), "{v1}");
        // Falling edge at instant 1.
        assert!(v1.contains("#1\n0!\nbx \""), "{v1}");
    }

    #[test]
    fn vcd_id_codes_are_unique() {
        let ids: std::collections::HashSet<String> = (0..500).map(vcd_id).collect();
        assert_eq!(ids.len(), 500);
    }
}
