//! End-to-end measurement: produce one Table 1 row.
//!
//! A measurement takes a set of compiled designs (1 = synchronous, N =
//! asynchronous tasks), sizes them with the `codegen` cost model, runs
//! a testbench through the RTOS runner, and reports the paper's six
//! numbers: task code/data bytes, RTOS code/data bytes, task kcycles,
//! RTOS kcycles.

use crate::runner::{AsyncRunner, Runner, SimError};
use crate::tb::InstantEvents;
use codegen::cost::{rtos_cost, task_cost, CostParams, RtosCost, TaskCost};
use ecl_core::Design;
use esterel::compile::CompileOptions;
use rtk::KernelParams;
use std::collections::HashMap;

/// One Table 1 row.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Partition label (e.g. "1 task", "3 tasks").
    pub label: String,
    /// Summed task footprint.
    pub task: TaskCost,
    /// RTOS footprint.
    pub rtos: RtosCost,
    /// Application cycles, in thousands.
    pub task_kcycles: f64,
    /// Kernel cycles, in thousands.
    pub rtos_kcycles: f64,
    /// Events lost to 1-place mailboxes (all tasks).
    pub events_lost: u64,
    /// Loss attribution: `(task name, events lost)` per task — exactly
    /// what observer monitors must tolerate on the async runner.
    pub events_lost_per_task: Vec<(String, u64)>,
    /// Emission counts by signal name (sanity checks).
    pub outputs: HashMap<String, u64>,
    /// EFSM sizes (states) per task.
    pub states_per_task: Vec<u32>,
}

/// Run a full measurement.
///
/// # Errors
///
/// Propagates compilation and simulation failures.
pub fn measure(
    designs: Vec<Design>,
    events: &[InstantEvents],
    label: &str,
    compile_opts: &CompileOptions,
    cost: &CostParams,
) -> Result<Measurement, SimError> {
    let mut runner = AsyncRunner::new(
        designs,
        compile_opts,
        *cost,
        KernelParams {
            dispatch_cycles: cost.cyc_rtos_dispatch,
            send_cycles: cost.cyc_rtos_send,
            input_cycles: cost.cyc_rtos_input,
        },
    )?;
    // Static sizing.
    let mut task = TaskCost::default();
    let mut states = Vec::new();
    let mut mailbox_bytes = 0u32;
    let mut mailboxes = 0u32;
    let pairs: Vec<(TaskCost, u32)> = runner
        .designs()
        .zip(runner.machines())
        .map(|(d, m)| (task_cost(m, d, cost), m.states.len() as u32))
        .collect();
    for (c, s) in pairs {
        task = task + c;
        states.push(s);
    }
    let n_tasks = states.len() as u32;
    // Mailboxes: every input of every task is buffered by the kernel;
    // valued ones also hold a value buffer.
    for d in runner.designs() {
        for s in d.program().signals() {
            if s.kind == efsm::SigKind::Input {
                mailboxes += 1;
                if s.valued {
                    mailbox_bytes += 64; // buffer sized by the kernel page
                }
            }
        }
    }
    let rtos = rtos_cost(n_tasks, mailboxes, mailbox_bytes, cost);
    // Dynamic run, on the interned-id fast path. Mailbox overwrites
    // surface in the event stream via the `run_events` loss bracket.
    runner.run_events(events, |_, _| {})?;
    // Names resolve here, at the report boundary — the kernel counts
    // losses by TaskId only.
    let events_lost_per_task = runner
        .kernel()
        .events_lost_by_task()
        .into_iter()
        .map(|(id, n)| (runner.kernel().task_name(id).to_string(), n))
        .collect();
    Ok(Measurement {
        label: label.to_string(),
        task,
        rtos,
        task_kcycles: runner.kernel().task_cycles as f64 / 1000.0,
        rtos_kcycles: runner.kernel().rtos_cycles as f64 / 1000.0,
        events_lost: runner.kernel().events_lost,
        events_lost_per_task,
        outputs: runner.counts(),
        states_per_task: states,
    })
}

impl Measurement {
    /// Render the per-task loss attribution (`name: n` pairs), or
    /// `"none"` when nothing was lost.
    pub fn losses(&self) -> String {
        if self.events_lost == 0 {
            return "none".to_string();
        }
        self.events_lost_per_task
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name}: {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Render as a paper-style table row.
    pub fn row(&self) -> String {
        format!(
            "{:<10} | code {:>6} data {:>6} | RTOS code {:>6} data {:>6} | task {:>10.0} kcyc | RTOS {:>10.0} kcyc",
            self.label,
            self.task.code_bytes,
            self.task.data_bytes,
            self.rtos.code_bytes,
            self.rtos.data_bytes,
            self.task_kcycles,
            self.rtos_kcycles
        )
    }
}
