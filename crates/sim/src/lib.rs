//! Simulation and measurement harness for compiled ECL designs.
//!
//! Reproduces the paper's evaluation setup (Section 4): a design is run
//! either as **one synchronous task** (the whole program compiled to a
//! single EFSM) or as **several asynchronous tasks** on the `rtk`
//! kernel, and both are measured for memory footprint (via `codegen`'s
//! cost model) and execution cycles split into task vs. RTOS time.
//!
//! * [`runner`] — the task runner: N compiled designs as RTOS tasks
//!   (N = 1 gives the paper's "1 task" rows); plus an interpreter-backed
//!   runner used for differential testing;
//! * [`tb`] — testbenches: the 500-packet stream for the protocol stack
//!   and the record/playback scenario for the voice pager;
//! * [`trace`] — ring-buffered signal-trace recording with a VCD-style
//!   dump, fed by both runners (the substrate for `ecl-observe`
//!   monitors and offline waveform inspection);
//! * [`measure`] — end-to-end measurement producing Table 1 rows;
//! * [`designs`] — the ECL sources of the two evaluated designs
//!   (Figures 1–4 and the reconstructed audio buffer controller).

pub mod designs;
pub mod measure;
pub mod runner;
pub mod tb;
pub mod trace;

pub use measure::{measure, Measurement};
pub use runner::{
    AsyncRunner, CoverageReport, InterpRunner, Present, Runner, RunnerSnapshot, SharedProgram,
    SimError, Snapshot, TaskCoverage, TaskProgram,
};
pub use tb::{InstantEvents, PacketTb, PagerTb};
pub use trace::{Recorder, Trace, TraceEvent, TraceRecord};
