//! Functional test: packets flow through the stack in both partitions.

use codegen::cost::CostParams;
use ecl_core::Compiler;
use rtk::KernelParams;
use sim::designs::PROTOCOL_STACK;
use sim::runner::{AsyncRunner, Runner};
use sim::tb::PacketTb;

fn run(designs: Vec<ecl_core::Design>, packets: usize) -> AsyncRunner {
    let tb = PacketTb {
        packets,
        corrupt_every: 4,
        reset_every: 0,
        seed: 42,
    };
    let mut r = AsyncRunner::new(
        designs,
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    for ev in tb.events() {
        for (name, v) in &ev.valued {
            r.set_input_i64(name, *v).unwrap();
        }
        let names = ev.names();
        r.instant(&names).unwrap();
    }
    r
}

#[test]
fn single_task_stack_emits_packets_and_crc() {
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let r = run(vec![d], 12);
    println!("counts: {:?}", r.counts());
    let pk = r.counts().get("top::packet").copied().unwrap_or(0);
    assert_eq!(pk, 12, "every packet should be assembled");
    let crc = r.counts().get("top::crc_ok").copied().unwrap_or(0);
    assert!(crc >= 11, "crc checked per packet, got {crc}");
    let am = r.counts().get("addr_match").copied().unwrap_or(0);
    assert!(
        am >= 1,
        "some packets should match, got {am}; counts {:?}",
        r.counts()
    );
}

#[test]
fn three_task_stack_emits_packets_and_crc() {
    let parts = Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .unwrap();
    assert_eq!(parts.len(), 3);
    let r = run(parts, 12);
    println!("counts: {:?}", r.counts());
    let pk = r.counts().get("packet").copied().unwrap_or(0);
    assert_eq!(pk, 12);
    let am = r.counts().get("addr_match").copied().unwrap_or(0);
    assert!(am >= 1, "counts: {:?}", r.counts());
    assert!(r.kernel().deliveries > 0);
}
