//! End-to-end smoke test: the paper's protocol stack compiles and runs.

use ecl_core::Compiler;
use sim::designs::PROTOCOL_STACK;

#[test]
fn stack_modules_compile_individually() {
    for m in ["assemble", "checkcrc", "prochdr"] {
        let d = Compiler::default().compile_str(PROTOCOL_STACK, m).unwrap();
        let efsm = d.to_efsm(&Default::default()).unwrap();
        efsm.validate().unwrap();
        println!("{m}: {}", efsm.stats());
    }
}

#[test]
fn stack_whole_program_compiles() {
    let d = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .unwrap();
    let efsm = d.to_efsm(&Default::default()).unwrap();
    efsm.validate().unwrap();
    println!("toplevel: {}", efsm.stats());
    assert!(efsm.states.len() >= 3);
}
