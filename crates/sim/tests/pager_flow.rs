//! Functional test: the voice pager records and plays back audio.

use codegen::cost::CostParams;
use ecl_core::Compiler;
use rtk::KernelParams;
use sim::designs::VOICE_PAGER;
use sim::runner::{AsyncRunner, Runner};
use sim::tb::PagerTb;

fn run(designs: Vec<ecl_core::Design>) -> AsyncRunner {
    let tb = PagerTb {
        rounds: 2,
        frames: 3,
        seed: 5,
    };
    let mut r = AsyncRunner::new(
        designs,
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    for ev in tb.events() {
        for (name, v) in &ev.valued {
            r.set_input_i64(name, *v).unwrap();
        }
        let names = ev.names();
        r.instant(&names).unwrap();
    }
    r
}

#[test]
fn single_task_pager_plays_back() {
    let d = Compiler::default()
        .compile_str(VOICE_PAGER, "pager")
        .unwrap();
    let m = d.to_efsm(&Default::default()).unwrap();
    println!("pager monolithic: {}", m.stats());
    let r = run(vec![d]);
    println!("counts: {:?}", r.counts());
    let frames = r.counts().get("top::frame").copied().unwrap_or(0);
    assert!(frames >= 4, "frames recorded: {frames}; {:?}", r.counts());
    let dac = r.counts().get("dac").copied().unwrap_or(0);
    assert!(dac >= 4, "dac samples played: {dac}; {:?}", r.counts());
}

#[test]
fn three_task_pager_plays_back() {
    let parts = Compiler::default().partition(VOICE_PAGER, "pager").unwrap();
    assert_eq!(parts.len(), 3);
    for p in &parts {
        let m = p.to_efsm(&Default::default()).unwrap();
        println!("pager task {}: {}", p.entry, m.stats());
    }
    let r = run(parts);
    println!("counts: {:?}", r.counts());
    let dac = r.counts().get("dac").copied().unwrap_or(0);
    assert!(dac >= 4, "dac: {dac}; {:?}", r.counts());
}
