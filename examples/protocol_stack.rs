//! The paper's running example (Figures 1–4): compile the protocol
//! stack both ways and stream packets through it.
//!
//! Run with: `cargo run --example protocol_stack`

use codegen::cost::CostParams;
use ecl_core::Compiler;
use rtk::KernelParams;
use sim::designs::PROTOCOL_STACK;
use sim::runner::AsyncRunner;
use sim::tb::PacketTb;

fn drive(mut r: AsyncRunner, label: &str) {
    let tb = PacketTb {
        packets: 50,
        corrupt_every: 5,
        reset_every: 0,
        seed: 1999,
    };
    for ev in tb.events() {
        for (name, v) in &ev.valued {
            r.set_input_i64(name, *v).unwrap();
        }
        let names = ev.names();
        r.instant(&names).unwrap();
    }
    println!("== {label} ==");
    let mut counts: Vec<_> = r.counts.iter().collect();
    counts.sort();
    for (name, n) in counts {
        println!("  {name}: {n}");
    }
    println!(
        "  task cycles: {}  RTOS cycles: {}  events lost: {}",
        r.kernel().task_cycles,
        r.kernel().rtos_cycles,
        r.kernel().events_lost
    );
}

fn main() {
    // Synchronous: the whole stack as one EFSM (paper: "a single task").
    let mono = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .expect("compiles");
    let m = mono.to_efsm(&Default::default()).expect("EFSM");
    println!("monolithic EFSM: {}", m.stats());
    drive(
        AsyncRunner::new(
            vec![mono],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap(),
        "1 task (synchronous)",
    );

    // Asynchronous: one task per module (paper: "three source files").
    let parts = Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .expect("partitions");
    for p in &parts {
        let m = p.to_efsm(&Default::default()).unwrap();
        println!("task {}: {}", p.entry, m.stats());
    }
    drive(
        AsyncRunner::new(
            parts,
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap(),
        "3 tasks (asynchronous)",
    );
}
