//! The paper's running example (Figures 1-4) on the Workspace session
//! API: compile the monolithic stack and its three asynchronous tasks
//! from one shared parse, then stream packets through both.
//!
//! Run with: `cargo run --example protocol_stack`

use ecl_repro::prelude::*;
use rtk::KernelParams;
use sim::designs::PROTOCOL_STACK;
use sim::tb::PacketTb;

fn drive(mut r: AsyncRunner, label: &str) {
    let tb = PacketTb {
        packets: 50,
        corrupt_every: 5,
        reset_every: 0,
        seed: 1999,
    };
    for ev in tb.events() {
        for (name, v) in &ev.valued {
            r.set_input_i64(name, *v).unwrap();
        }
        let names = ev.names();
        r.instant(&names).unwrap();
    }
    println!("== {label} ==");
    let by_name = r.counts();
    let mut counts: Vec<_> = by_name.iter().collect();
    counts.sort();
    for (name, n) in counts {
        println!("  {name}: {n}");
    }
    println!(
        "  task cycles: {}  RTOS cycles: {}  events lost: {}",
        r.kernel().task_cycles,
        r.kernel().rtos_cycles,
        r.kernel().events_lost
    );
}

fn main() {
    let mut ws = Workspace::new();
    ws.add_source("protocol_stack.ecl", PROTOCOL_STACK);

    // Synchronous: the whole stack as one EFSM (paper: "a single task").
    let mono = ws
        .compile("protocol_stack.ecl", "toplevel")
        .expect("compiles");
    let m = ws.machine("protocol_stack.ecl", "toplevel").expect("EFSM");
    println!("monolithic EFSM: {}", m.stats());
    drive(
        AsyncRunner::new(
            vec![(*mono).clone()],
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap(),
        "1 task (synchronous)",
    );

    // Asynchronous: one task per module (paper: "three source files").
    // Re-enter the shared Parsed stage per submodule: the workspace's
    // parse is reused, each instantiation is elaborated with its actual
    // wire names.
    let parsed = ws.parsed("protocol_stack.ecl").expect("parsed");
    let parts: Vec<Design> = parsed
        .instantiations("toplevel")
        .into_iter()
        .map(|inst| {
            parsed
                .elaborate_bound(&inst.module, Some(&inst.actuals))
                .expect("elaborates")
                .split()
                .expect("splits")
                .to_design()
        })
        .collect();
    for p in &parts {
        let m = p.to_efsm(&Default::default()).unwrap();
        println!("task {}: {}", p.entry, m.stats());
    }
    println!(
        "cache: {:?} (the toplevel and all three tasks shared one parse)",
        ws.cache_stats()
    );
    drive(
        AsyncRunner::new(
            parts,
            &Default::default(),
            CostParams::default(),
            KernelParams::default(),
        )
        .unwrap(),
        "3 tasks (asynchronous)",
    );
}
