//! Hardware/software partitioning (paper Section 4: "the CRC
//! computation may be [a] good candidate for hardware") on the staged
//! pipeline: the `Artifacts` stage emits C for every design and
//! Verilog + a gate estimate exactly when the machine is pure control.
//!
//! Run with: `cargo run --example hw_sw_split`

use ecl_repro::prelude::*;
use sim::designs::PROTOCOL_STACK;

fn main() {
    // Software side: checkcrc (has a data part → software only, exactly
    // as the paper says).
    let sw = Source::named("protocol_stack.ecl", PROTOCOL_STACK)
        .finish("checkcrc")
        .expect("compiles");
    let artifacts = Artifacts::emit(&sw).expect("codegen");
    println!("=== checkcrc: software (C) implementation ===");
    println!("{}", artifacts.c());
    match artifacts.require_verilog() {
        Err(e) => println!("hardware synthesis of checkcrc: {e}"),
        Ok(_) => unreachable!("checkcrc has a data part"),
    }

    // Hardware side: a pure-control packet-framing controller.
    let src = "
        module framer(input pure reset, input pure byte_in, output pure pkt_done) {
          while (1) {
            do {
              await (byte_in); await (byte_in); await (byte_in); await (byte_in);
              emit (pkt_done);
            } abort (reset);
          }
        }";
    let hw = Source::new(src).finish("framer").expect("compiles");
    let artifacts = Artifacts::emit(&hw).expect("codegen");
    println!("=== framer: hardware (Verilog) implementation ===");
    println!("{}", artifacts.require_verilog().expect("pure control"));
    let g = artifacts.gates();
    println!("// gate estimate: {} flops, ~{} gates", g.flops, g.gates);
}
