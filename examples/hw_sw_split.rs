//! Hardware/software partitioning (paper Section 4: "the CRC
//! computation may be [a] good candidate for hardware"): emit C for the
//! software side and Verilog + a gate estimate for a pure-control
//! controller.
//!
//! Run with: `cargo run --example hw_sw_split`

use ecl_core::Compiler;
use sim::designs::PROTOCOL_STACK;

fn main() {
    // Software side: checkcrc (has a data part → software only, exactly
    // as the paper says).
    let sw = Compiler::default()
        .compile_str(PROTOCOL_STACK, "checkcrc")
        .expect("compiles");
    let sw_m = sw.to_efsm(&Default::default()).expect("EFSM");
    println!("=== checkcrc: software (C) implementation ===");
    println!("{}", codegen::c_backend::emit_c(&sw_m, &sw));
    match codegen::verilog::emit_verilog(&sw_m) {
        Err(e) => println!("hardware synthesis of checkcrc: {e}\n"),
        Ok(_) => unreachable!("checkcrc has a data part"),
    }

    // Hardware side: a pure-control packet-framing controller.
    let src = "
        module framer(input pure reset, input pure byte_in, output pure pkt_done) {
          while (1) {
            do {
              await (byte_in); await (byte_in); await (byte_in); await (byte_in);
              emit (pkt_done);
            } abort (reset);
          }
        }";
    let hw = Compiler::default().compile_str(src, "framer").unwrap();
    let hw_m = hw.to_efsm(&Default::default()).unwrap();
    println!("=== framer: hardware (Verilog) implementation ===");
    println!("{}", codegen::verilog::emit_verilog(&hw_m).unwrap());
    let g = codegen::verilog::estimate_gates(&hw_m);
    println!("// gate estimate: {} flops, ~{} gates", g.flops, g.gates);
}
