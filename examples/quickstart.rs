//! Quickstart: compile a small ECL module, inspect the split, simulate
//! a few instants, and print the EFSM.
//!
//! Run with: `cargo run --example quickstart`

use ecl_core::Compiler;
use sim::runner::InterpRunner;

fn main() {
    let src = "
        module debounce(input pure raw, input pure clk, output pure clean) {
          int stable;
          while (1) {
            await (clk);
            present (raw) {
              stable = stable + 1;
              if (stable >= 3) { emit (clean); stable = 0; }
            } else {
              stable = 0;
            }
          }
        }";
    let design = Compiler::default()
        .compile_str(src, "debounce")
        .expect("compiles");
    println!(
        "split: {} reactive statements, {} extracted actions, {} predicates",
        design.split.report.reactive_stmts,
        design.split.report.actions,
        design.split.report.preds
    );
    let efsm = design.to_efsm(&Default::default()).expect("EFSM");
    println!("EFSM: {}", efsm.stats());
    println!("\n{}", efsm::dot::to_dot(&efsm, 64));

    // Simulate: 3 noisy then 4 clean clock edges.
    let mut run = InterpRunner::new(&design).expect("runtime");
    let pattern: &[&[&str]] = &[
        &[],
        &["clk", "raw"],
        &["clk"],
        &["clk", "raw"],
        &["clk", "raw"],
        &["clk", "raw"],
        &["clk", "raw"],
    ];
    for (t, ev) in pattern.iter().enumerate() {
        let out = run.instant(ev).expect("instant");
        println!("t={t} inputs={ev:?} -> {out:?}");
    }
}
