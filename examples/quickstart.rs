//! Quickstart on the staged pipeline: walk a small ECL module through
//! every stage — parse, elaborate, split, Esterel IR, EFSM, artifacts —
//! inspecting each one, then simulate a few instants.
//!
//! Run with: `cargo run --example quickstart`

use ecl_repro::prelude::*;
use sim::runner::InterpRunner;

fn main() {
    let src = "
        module debounce(input pure raw, input pure clk, output pure clean) {
          int stable;
          while (1) {
            await (clk);
            present (raw) {
              stable = stable + 1;
              if (stable >= 3) { emit (clean); stable = 0; }
            } else {
              stable = 0;
            }
          }
        }";

    // Stage by stage; every artifact is inspectable before advancing.
    let parsed = Source::new(src).parse().expect("parses");
    println!("modules: {:?}", parsed.module_names());

    let elaborated = parsed.elaborate("debounce").expect("elaborates");
    println!(
        "elaborated: {} signals, {} variables",
        elaborated.elab().signals.len(),
        elaborated.elab().vars.len()
    );

    let split = elaborated.split().expect("splits");
    let report = split.report();
    println!(
        "split: {} reactive statements, {} extracted actions, {} predicates",
        report.reactive_stmts, report.actions, report.preds
    );

    let machine = split.ir().compile(&Default::default()).expect("EFSM");
    println!("EFSM: {}", machine.efsm().stats());
    println!("\n{}", efsm::dot::to_dot(machine.efsm(), 64));

    let artifacts = Artifacts::emit(&machine).expect("codegen");
    println!(
        "artifacts: {} bytes of C, hardware option: {}",
        artifacts.c().len(),
        artifacts.verilog().is_some()
    );

    // Simulate: 3 noisy then 4 clean clock edges.
    let design = machine.design();
    let mut run = InterpRunner::new(&design).expect("runtime");
    let pattern: &[&[&str]] = &[
        &[],
        &["clk", "raw"],
        &["clk"],
        &["clk", "raw"],
        &["clk", "raw"],
        &["clk", "raw"],
        &["clk", "raw"],
    ];
    for (t, ev) in pattern.iter().enumerate() {
        let out = run.instant(ev).expect("instant");
        println!("t={t} inputs={ev:?} -> {out:?}");
    }
}
