//! The voice-mail pager audio buffer controller (the paper's second
//! Table 1 example, reconstructed): record and play back audio frames,
//! compiled through the staged pipeline.
//!
//! Run with: `cargo run --example voice_pager`

use ecl_repro::prelude::*;
use rtk::KernelParams;
use sim::designs::VOICE_PAGER;
use sim::tb::PagerTb;

fn main() {
    let machine = Source::named("voice_pager.ecl", VOICE_PAGER)
        .finish("pager")
        .expect("compiles");
    println!("monolithic pager EFSM: {}", machine.efsm().stats());
    println!("(three modules waiting on unrelated streams multiply into a product machine —");
    println!(" the mechanism behind the paper's Buffer row, where sync code ≫ async code)\n");

    let mut r = AsyncRunner::new(
        vec![machine.design()],
        &Default::default(),
        CostParams::default(),
        KernelParams::default(),
    )
    .unwrap();
    let tb = PagerTb {
        rounds: 3,
        frames: 4,
        seed: 7,
    };
    for ev in tb.events() {
        for (name, v) in &ev.valued {
            r.set_input_i64(name, *v).unwrap();
        }
        let names = ev.names();
        r.instant(&names).unwrap();
    }
    let by_name = r.counts();
    let mut counts: Vec<_> = by_name.iter().collect();
    counts.sort();
    println!("emissions after 3 record/play rounds:");
    for (name, n) in counts {
        println!("  {name}: {n}");
    }
}
