//! Monitored run: the protocol stack with its observers attached.
//!
//! Compiles the design through the `Workspace`, advances it to the
//! `Monitored` stage (observers synthesized to monitor EFSMs), then
//! drives the packet testbench twice — clean, and with a corrupted
//! CRC byte seeded — on both the synchronous and the partitioned
//! implementation. Finishes with the head of the recorded VCD trace.
//!
//! Run with: `cargo run --example monitored_run`

use ecl_core::{Compiler, Workspace};
use ecl_observe::{check_async, check_interp, WorkspaceObserveExt};
use sim::designs::PROTOCOL_STACK;
use sim::tb::PacketTb;

fn main() {
    // The Monitored stage through the batch driver: design machine
    // compiled and cached, observers synthesized alongside.
    let mut ws = Workspace::new();
    ws.add_source("protocol_stack.ecl", PROTOCOL_STACK);
    let monitored = ws
        .monitored("protocol_stack.ecl", "toplevel")
        .expect("monitored stage");
    println!(
        "design `{}` carries {} observers:",
        monitored.entry(),
        monitored.specs().len()
    );
    for s in monitored.specs() {
        println!(
            "  {} ({} propert{}, {} monitor states)",
            s.name,
            s.props.len(),
            if s.props.len() == 1 { "y" } else { "ies" },
            s.efsm.states.len()
        );
    }

    let clean = PacketTb {
        packets: 3,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let corrupted = PacketTb {
        packets: 2,
        corrupt_every: 2, // packet #2 carries a corrupted CRC byte
        reset_every: 0,
        seed: 1999,
    }
    .events();

    let mono = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .expect("stack compiles");
    let parts = Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .expect("stack partitions");

    println!("\nclean run (3 packets):");
    let r = check_interp(&mono, &clean, monitored.specs(), 0).expect("interp run");
    println!(" interpreter:\n{}", r.report);
    let r = check_async(parts.clone(), &clean, monitored.specs(), 0).expect("async run");
    println!(" 3 RTOS tasks:\n{}", r.report);

    println!("corrupted run (CRC byte of packet #2 flipped):");
    let interp_run = check_interp(&mono, &corrupted, monitored.specs(), 200).expect("interp run");
    println!(" interpreter:\n{}", interp_run.report);
    let r = check_async(parts, &corrupted, monitored.specs(), 0).expect("async run");
    println!(" 3 RTOS tasks:\n{}", r.report);

    // The recorder kept the last 200 instants; dump the window head.
    let vcd = interp_run.trace.to_vcd("protocol_stack");
    println!(
        "recorded trace: {} instants retained",
        interp_run.trace.len()
    );
    println!("VCD head:");
    for line in vcd.lines().take(12) {
        println!("  {line}");
    }

    // Monitors also exist as C text, next to the design's own
    // artifacts.
    let first_line = monitored.c().lines().nth(1).unwrap_or_default();
    println!(
        "\nmonitor C emission: {} bytes ({first_line})",
        monitored.c().len()
    );
}
