//! Monitored run: the protocol stack with its observers attached.
//!
//! Compiles the design through the `Workspace`, advances it to the
//! `Monitored` stage (observers synthesized to monitor EFSMs), then
//! drives the packet testbench twice — clean, and with a corrupted
//! CRC byte seeded — on both the synchronous and the partitioned
//! implementation. Finishes with the head of the recorded VCD trace.
//!
//! Run with: `cargo run --example monitored_run`
//!
//! With `ECL_TELEMETRY=1` (plus `ECL_TELEMETRY_OUT=<path|->` and
//! optionally `ECL_TELEMETRY_SPAN=<n>`), every run is bracketed by a
//! telemetry [`Run`] and the example doubles as a JSONL emitter — the
//! CI smoke job validates that stream with `check_telemetry`.
//!
//! With `ECL_FAULTS=key=value,...` (see `ecl_faults::init_from_env`)
//! a deterministic fault plan is installed first: events may be
//! dropped or delayed and compiled backends demoted, so verdicts
//! other than PASS are an expected outcome of an injected run — the
//! CI chaos job uses exactly this to put `fault_injected` and
//! `degraded` lines into a validated stream.

use ecl_core::{Compiler, Workspace};
use ecl_observe::{check_async, check_interp, MonitoredRun, WorkspaceObserveExt};
use ecl_syntax::diag::EclError;
use ecl_telemetry::Run;
use efsm::Backend;
use sim::designs::PROTOCOL_STACK;
use sim::runner::AsyncRunner;
use sim::tb::PacketTb;

/// Bracket one monitored run with a telemetry `Run` (a no-op when the
/// stream is off), so run_start/run_end lines correlate the spans and
/// verdicts in between.
fn bracketed(
    config: &str,
    instants: usize,
    f: impl FnOnce() -> Result<MonitoredRun, EclError>,
) -> MonitoredRun {
    let run = Run::start("protocol_stack", config);
    let r = f().expect("monitored run succeeds");
    run.end(instants as u64);
    r
}

fn main() {
    // Telemetry is opt-in from the environment; when on, the whole
    // example emits one schema-versioned JSON object per line.
    ecl_telemetry::init_from_env();
    // So is fault injection: with `ECL_FAULTS` set, every run below
    // executes under the same seeded plan, and FAIL/INCONCLUSIVE
    // verdicts are legitimate outcomes rather than errors.
    let chaos = ecl_faults::init_from_env();
    if chaos {
        println!(
            "fault plan installed from ECL_FAULTS: {:?}",
            ecl_faults::current_plan()
        );
    }
    // The Monitored stage through the batch driver: design machine
    // compiled and cached, observers synthesized alongside.
    let mut ws = Workspace::new();
    ws.add_source("protocol_stack.ecl", PROTOCOL_STACK);
    let monitored = ws
        .monitored("protocol_stack.ecl", "toplevel")
        .expect("monitored stage");
    println!(
        "design `{}` carries {} observers:",
        monitored.entry(),
        monitored.specs().len()
    );
    for s in monitored.specs() {
        println!(
            "  {} ({} propert{}, {} monitor states)",
            s.name,
            s.props.len(),
            if s.props.len() == 1 { "y" } else { "ies" },
            s.efsm.states.len()
        );
    }

    let clean = PacketTb {
        packets: 3,
        corrupt_every: 0,
        reset_every: 0,
        seed: 1999,
    }
    .events();
    let corrupted = PacketTb {
        packets: 2,
        corrupt_every: 2, // packet #2 carries a corrupted CRC byte
        reset_every: 0,
        seed: 1999,
    }
    .events();

    let mono = Compiler::default()
        .compile_str(PROTOCOL_STACK, "toplevel")
        .expect("stack compiles");
    let parts = Compiler::default()
        .partition(PROTOCOL_STACK, "toplevel")
        .expect("stack partitions");

    // Execution backends are one knob: `Backend::Compiled` (fused
    // per-task instant programs — the default) or `Backend::Walker`
    // (the s-graph reference path that differential tests and fault
    // demotion fall back onto). `coverage()` reports what the
    // compiled backend will actually run.
    let mut probe = AsyncRunner::new(
        vec![mono.clone()],
        &Default::default(),
        Default::default(),
        Default::default(),
    )
    .expect("runner builds");
    let cov = probe.coverage();
    println!(
        "\nbackend {:?}: {}/{} states fused into {} rows, \
         {}/{} data hooks on bytecode (fully fused: {})",
        probe.backend(),
        cov.fused_states(),
        cov.states(),
        cov.fused_rows(),
        cov.vm_compiled(),
        cov.vm_total(),
        cov.fully_fused()
    );
    probe.set_backend(Backend::Walker);
    println!(
        "backend {:?}: same design, same semantics, reference path",
        probe.backend()
    );

    println!("\nclean run (3 packets):");
    let r = bracketed("example/interp-clean", clean.len(), || {
        check_interp(&mono, &clean, monitored.specs(), 0)
    });
    println!(" interpreter:\n{}", r.report);
    let r = bracketed("example/async-clean", clean.len(), || {
        check_async(parts.clone(), &clean, monitored.specs(), 0)
    });
    println!(" 3 RTOS tasks:\n{}", r.report);

    println!("corrupted run (CRC byte of packet #2 flipped):");
    let interp_run = bracketed("example/interp-corrupted", corrupted.len(), || {
        check_interp(&mono, &corrupted, monitored.specs(), 200)
    });
    println!(" interpreter:\n{}", interp_run.report);
    let r = bracketed("example/async-corrupted", corrupted.len(), || {
        check_async(parts, &corrupted, monitored.specs(), 0)
    });
    println!(" 3 RTOS tasks:\n{}", r.report);

    // The recorder kept the last 200 instants; dump the window head.
    let vcd = interp_run.trace.to_vcd("protocol_stack");
    println!(
        "recorded trace: {} instants retained",
        interp_run.trace.len()
    );
    println!("VCD head:");
    for line in vcd.lines().take(12) {
        println!("  {line}");
    }

    // Monitors also exist as C text, next to the design's own
    // artifacts.
    let first_line = monitored.c().lines().nth(1).unwrap_or_default();
    println!(
        "\nmonitor C emission: {} bytes ({first_line})",
        monitored.c().len()
    );

    if chaos {
        let stats = ecl_faults::uninstall().expect("plan installed from ECL_FAULTS");
        println!(
            "\nfault injection summary: {} injections\n  {stats:?}",
            stats.total()
        );
    }
}
