//! # ecl-repro — facade crate
//!
//! Reproduction of "ECL: A Specification Environment for System-Level
//! Design" (Lavagno & Sentovich, DAC 1999). This crate re-exports the
//! workspace's public surface so downstream users can depend on one
//! crate; the implementation lives in the member crates (see README.md
//! and DESIGN.md for the architecture).
//!
//! ```
//! use ecl_repro::prelude::*;
//!
//! let src = "module m(input pure a, output pure o) {
//!              while (1) { await (a); emit (o); } }";
//! let design = Compiler::default().compile_str(src, "m").unwrap();
//! let efsm = design.to_efsm(&Default::default()).unwrap();
//! assert!(efsm.validate().is_ok());
//! ```

pub use codegen;
pub use ecl_core;
pub use ecl_syntax;
pub use ecl_types;
pub use efsm;
pub use esterel;
pub use rtk;
pub use sim;

/// The names most users need.
pub mod prelude {
    pub use codegen::cost::{rtos_cost, task_cost, CostParams};
    pub use ecl_core::{Compiler, Design, Options, SplitStrategy};
    pub use efsm::{DataHooks, Efsm, NoHooks};
    pub use esterel::CompileOptions;
    pub use sim::measure::measure;
    pub use sim::runner::{AsyncRunner, InterpRunner};
    pub use sim::tb::{PacketTb, PagerTb};
}
