//! # ecl-repro — facade crate
//!
//! Reproduction of "ECL: A Specification Environment for System-Level
//! Design" (Lavagno & Sentovich, DAC 1999). This crate re-exports the
//! workspace's public surface so downstream users can depend on one
//! crate; the implementation lives in the member crates (see README.md
//! and DESIGN.md for the architecture).
//!
//! ## The staged pipeline
//!
//! Compilation is exposed as typed stages — `Source → Parsed →
//! Elaborated → Split → EsterelIr → Machine → Artifacts` — so tools
//! can stop at, inspect, or re-enter any point:
//!
//! ```
//! use ecl_repro::prelude::*;
//!
//! let src = "module m(input pure a, output pure o) {
//!              while (1) { await (a); emit (o); } }";
//! let machine = Source::new(src)
//!     .parse().unwrap()          // -> Parsed
//!     .elaborate("m").unwrap()   // -> Elaborated
//!     .split().unwrap()          // -> Split
//!     .ir()                      // -> EsterelIr
//!     .compile(&Default::default()).unwrap(); // -> Machine
//! machine.validate().unwrap();
//! let artifacts = Artifacts::emit(&machine).unwrap();
//! assert!(artifacts.c().contains("m"));
//! ```
//!
//! ## Batch sessions
//!
//! A [`prelude::Workspace`] compiles many entry modules from a shared
//! parsed program set, in parallel, memoizing by
//! `(source, entry, strategy)`:
//!
//! ```
//! use ecl_repro::prelude::*;
//!
//! let mut ws = Workspace::new();
//! ws.add_source("lib.ecl", "
//!     module ping(input pure i, output pure o) { while (1) { await (i); emit (o); } }
//!     module pong(input pure i, output pure o) { while (1) { await (i); emit (o); } }");
//! let results = ws.compile_all(&[("lib.ecl", "ping"), ("lib.ecl", "pong")]);
//! assert!(results.iter().all(Result::is_ok));
//! assert_eq!(ws.cache_stats().parse_misses, 1); // parsed once
//! ```
//!
//! ## Legacy facade
//!
//! The original one-shot API still works (now a thin shim over the
//! pipeline):
//!
//! ```
//! use ecl_repro::prelude::*;
//!
//! let src = "module m(input pure a, output pure o) {
//!              while (1) { await (a); emit (o); } }";
//! let design = Compiler::default().compile_str(src, "m").unwrap();
//! let efsm = design.to_efsm(&Default::default()).unwrap();
//! assert!(efsm.validate().is_ok());
//! ```

pub use codegen;
pub use ecl_core;
pub use ecl_faults;
pub use ecl_fleet;
pub use ecl_observe;
pub use ecl_syntax;
pub use ecl_telemetry;
pub use ecl_types;
pub use efsm;
pub use esterel;
pub use rtk;
pub use sim;

/// The names most users need.
pub mod prelude {
    // Staged pipeline (preferred surface).
    pub use codegen::artifacts::{Artifacts, WorkspaceCodegenExt};
    pub use ecl_core::pipeline::{Elaborated, EsterelIr, Machine, Parsed, Source, Split};
    pub use ecl_core::workspace::{CacheStats, Workspace};
    pub use ecl_syntax::diag::{Diagnostic, Diagnostics, EclError, Severity, Stage};

    // Legacy one-shot compiler (shim over the pipeline).
    pub use ecl_core::{Compiler, Design, Options, SplitStrategy};

    // Back ends, machines, simulation.
    pub use codegen::cost::{rtos_cost, task_cost, CostParams};
    pub use efsm::{Backend, BitSet, DataHooks, Efsm, NoHooks, SigId, SigTable};
    pub use esterel::CompileOptions;
    pub use sim::measure::measure;
    pub use sim::runner::{
        AsyncRunner, InterpRunner, Present, Runner, SimError, SimErrorKind, WatchdogBudget,
    };
    pub use sim::tb::{PacketTb, PagerTb};
    pub use sim::trace::Trace;

    // Observers: monitor synthesis, online checking, isolated sessions.
    pub use ecl_observe::{
        check_async, check_async_with, check_interp, check_interp_with, run_session, run_sessions,
        synthesize_all, Monitor, MonitorReport, MonitorSpec, Monitored, SessionOutcome, Verdict,
        WorkspaceObserveExt,
    };

    // Deterministic fault injection (inert without an installed plan).
    pub use ecl_faults::{FaultPlan, InjectionStats};

    // Supervised session fleets: checkpoint/restore, restart with
    // backoff, admission control and graceful degradation.
    pub use ecl_fleet::{
        FleetConfig, FleetHealth, FleetReport, Pressure, RestartPolicy, SessionReport, SessionSpec,
        SessionStatus, Supervisor,
    };
}
